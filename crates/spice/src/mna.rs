//! Modified nodal analysis: matrix/RHS assembly and Newton iteration.
//!
//! Unknowns are the non-ground node voltages followed by one branch current
//! per voltage source. Nonlinear devices (MOSFETs) are linearized around the
//! current solution estimate with companion stamps; capacitors contribute
//! backward-Euler companion conductances during transient steps and are open
//! in DC.

use crate::device::Device;
use crate::model::MosModel;
use crate::netlist::{Netlist, NodeId, SourceWaveform};
use crate::SpiceError;
use glova_linalg::sparse::{CsrMatrix, SparseLu, Triplets};
use glova_linalg::{FillOrdering, LinalgError, Lu, Matrix};

/// Assembly context: DC or one implicit transient step.
#[derive(Debug, Clone, Copy)]
pub struct StampContext<'a> {
    /// Simulation time for source waveform evaluation, seconds.
    pub time: f64,
    /// `Some((dt, previous_solution))` during a transient step.
    pub step: Option<(f64, &'a [f64])>,
    /// Conductance from every node to ground (convergence aid + floating
    /// node protection).
    pub gmin: f64,
}

/// Which linear-algebra backend the Newton iterations factor and solve
/// on.
///
/// Both backends produce node voltages that agree to well within the
/// Newton tolerance (locked in by `tests/solver_backend_parity.rs`); the
/// dense path is the long-standing reference/oracle, the sparse path is
/// the scaling one — MNA matrices carry `O(n)` nonzeros, so from a few
/// dozen unknowns the dense `O(n³)` factorization dominates every solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverBackend {
    /// Pick by system size: dense below
    /// [`AUTO_SPARSE_THRESHOLD`](Self::AUTO_SPARSE_THRESHOLD) unknowns,
    /// sparse at or above it.
    #[default]
    Auto,
    /// Always the dense LU (`glova_linalg::Lu`).
    Dense,
    /// Always the sparse LU (`glova_linalg::sparse::SparseLu`).
    Sparse,
}

impl SolverBackend {
    /// Unknown count at which [`SolverBackend::Auto`] switches to the
    /// sparse backend. Below this the dense factorization's tiny constant
    /// factors win; at and above it the sparse solver's `O(nnz)`
    /// elimination pulls ahead (measured crossover on inverter chains is
    /// between the 4-stage and 24-stage sizes).
    pub const AUTO_SPARSE_THRESHOLD: usize = 20;

    /// Whether this backend resolves to sparse for a system of
    /// `unknowns` unknowns.
    pub fn resolves_to_sparse(self, unknowns: usize) -> bool {
        match self {
            SolverBackend::Auto => unknowns >= Self::AUTO_SPARSE_THRESHOLD,
            SolverBackend::Dense => false,
            SolverBackend::Sparse => true,
        }
    }

    /// Parses `auto` / `dense` / `sparse` (the CLI override format).
    ///
    /// # Errors
    ///
    /// Returns a usage message for anything else.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "auto" => Ok(SolverBackend::Auto),
            "dense" => Ok(SolverBackend::Dense),
            "sparse" => Ok(SolverBackend::Sparse),
            other => Err(format!("unknown solver backend `{other}` (use auto|dense|sparse)")),
        }
    }
}

impl std::fmt::Display for SolverBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SolverBackend::Auto => "auto",
            SolverBackend::Dense => "dense",
            SolverBackend::Sparse => "sparse",
        })
    }
}

/// How a retarget was applied — and, for solver pools, whether the
/// retargeted state still carries the canonical symbolic factorization.
///
/// Returned by [`MnaState::retarget`] /
/// [`OpSolver::retarget`](crate::dc::OpSolver::retarget) so callers act
/// on an explicit classification instead of inferring the topology case
/// from side-channel counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetargetOutcome {
    /// Value-only fast path: same topology fingerprint, stamp values
    /// rewritten in place. Template, pattern and any frozen factorization
    /// all survive.
    Values,
    /// Same backend/dimension/pattern, but the template was rebuilt from
    /// a netlist walk and swapped in. The frozen factorization survives.
    Pattern,
    /// Different topology: the state was rebuilt wholesale, abandoning
    /// the factorization and (on the sparse backend) the canonical pivot
    /// order — solver pools must retire the instance.
    Topology,
}

/// How the sparse numeric refresh picks its partial-refactorization
/// dirty set (see `MnaState::refresh_factor`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartialPlanMode {
    /// Template-declared dirty sets: every MOSFET restamp slot plus the
    /// `gmin` diagonal (or the gmin-free **narrow** subset when `gmin`
    /// is unchanged), regardless of which devices actually moved — the
    /// PR 5 behavior, kept as the benchmark baseline.
    Monolithic,
    /// Exact per-device dirty sets: the assembled values are bitwise
    /// diffed against a snapshot of the last successfully factored
    /// input, so the reachable-row closure is computed from the slots of
    /// the devices that actually changed (converged linear subnetworks
    /// and untouched devices drop out entirely). Bitwise identical to a
    /// full refactorization by the partial-refactorization contract —
    /// the diff *proves* the contract's "unchanged outside the dirty
    /// set" premise.
    #[default]
    PerDevice,
}

impl PartialPlanMode {
    /// Parses a CLI-style mode name.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the accepted values.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "monolithic" => Ok(Self::Monolithic),
            "per-device" => Ok(Self::PerDevice),
            other => Err(format!("unknown plan mode `{other}` (use monolithic|per-device)")),
        }
    }
}

impl std::fmt::Display for PartialPlanMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Monolithic => write!(f, "monolithic"),
            Self::PerDevice => write!(f, "per-device"),
        }
    }
}

/// Cumulative numeric-refactorization accounting for one [`MnaState`]
/// (sparse backend; the dense backend always refreshes in full and
/// reports zeros). The partial/full split — and especially
/// `rows_eliminated` vs `rows_total` — is the measured effect of
/// KLU-style partial refactorization: rows outside the dirty reachable
/// set keep their frozen `L`/`U` values.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefactorStats {
    /// Full numeric refactorizations (every row re-eliminated).
    pub full: u64,
    /// Partial refactorizations (dirty reachable set only).
    pub partial: u64,
    /// The subset of `partial` that ran on the **narrow** (gmin-free)
    /// dirty set: refreshes under an unchanged `gmin` whose dirty values
    /// exclude the gmin diagonal entirely, so it drops out of the
    /// reachable set (the monolithic MOSFET-slots schedule, or an exact
    /// per-device schedule under the same `gmin`).
    pub narrow: u64,
    /// The subset of `partial` that ran on an **exact per-device** dirty
    /// set ([`PartialPlanMode::PerDevice`]): the changed input slots were
    /// discovered by a bitwise diff against the last factored values, so
    /// the reachable closure covers only rows the devices that actually
    /// moved can influence — never more, usually strictly fewer, than
    /// the monolithic template dirty set.
    pub device: u64,
    /// Factor rows actually re-eliminated, summed over all refreshes.
    pub rows_eliminated: u64,
    /// Factor rows a full-only scheme would have re-eliminated.
    pub rows_total: u64,
}

impl RefactorStats {
    /// Fraction of rows re-eliminated vs the full-refactor baseline
    /// (1.0 when partial refactorization never engaged).
    pub fn elimination_ratio(&self) -> f64 {
        if self.rows_total == 0 {
            1.0
        } else {
            self.rows_eliminated as f64 / self.rows_total as f64
        }
    }
}

/// Maps a node to its row/column in the MNA system (`None` for ground).
fn node_index(node: NodeId) -> Option<usize> {
    if node.is_ground() {
        None
    } else {
        Some(node.index() - 1)
    }
}

/// Adds `value` at `(row(a), col(b))` when both are non-ground.
fn stamp(matrix: &mut Matrix, a: Option<usize>, b: Option<usize>, value: f64) {
    if let (Some(i), Some(j)) = (a, b) {
        matrix[(i, j)] += value;
    }
}

/// Adds `value` into the RHS at `row(a)` when non-ground.
fn stamp_rhs(rhs: &mut [f64], a: Option<usize>, value: f64) {
    if let Some(i) = a {
        rhs[i] += value;
    }
}

/// One MOSFET's pre-resolved nonlinear stamp: node indices, polarity and
/// geometry ratio extracted once per Newton solve so the per-iteration
/// restamp touches no netlist structure.
#[derive(Debug, Clone, Copy)]
struct MosStamp {
    drain: Option<usize>,
    gate: Option<usize>,
    source: Option<usize>,
    model: MosModel,
    ratio: f64,
    /// Polarity factor: +1 NMOS, −1 PMOS (carrier-space transform).
    p: f64,
}

/// One MOSFET linearization around a solution estimate — the numbers
/// both backends stamp, computed identically so dense and sparse
/// assemblies agree bit for bit.
#[derive(Debug, Clone, Copy)]
struct MosLin {
    /// Whether the physical source acts as the drain at this estimate
    /// (the device is symmetric; the higher carrier-space terminal wins).
    swapped: bool,
    gm: f64,
    gds: f64,
    /// Polarity-signed equivalent current `p · ieq`.
    ieq_signed: f64,
}

impl MosStamp {
    /// Linearizes around estimate `x` (ground = 0 V).
    fn linearize(&self, x: &[f64]) -> MosLin {
        // Polarity factor: work in "carrier space" w = p·v so PMOS
        // reuses the NMOS equations; p² = 1 keeps the conductance
        // stamps sign-free while the equivalent current gets p.
        let volt = |idx: Option<usize>| -> f64 { idx.map_or(0.0, |i| x[i]) };
        let p = self.p;
        let wd = p * volt(self.drain);
        let wg = p * volt(self.gate);
        let ws = p * volt(self.source);
        let swapped = wd < ws;
        let (wdd, wss) = if swapped { (ws, wd) } else { (wd, ws) };
        let vgs_c = wg - wss;
        let vds_c = wdd - wss;
        let (id0, gm0, gds0) = self.model.ids(vgs_c, vds_c);
        let (id, gm, gds) = (id0 * self.ratio, gm0 * self.ratio, gds0 * self.ratio);
        MosLin { swapped, gm, gds, ieq_signed: p * (id - gm * vgs_c - gds * vds_c) }
    }
}

/// One context-dependent RHS stamp: the part of the base RHS that varies
/// with [`StampContext`] `time` / `step` while the matrix pattern *and*
/// values stay fixed — voltage-source waveform values and backward-Euler
/// capacitor companion currents. Recording these lets a template be
/// re-pointed at a new time step ([`AssemblyTemplate::update_context`])
/// with a value-only RHS rebuild instead of a full netlist re-walk, so
/// transient stepping inherits the same symbolic/pattern reuse DC sweeps
/// have.
#[derive(Debug, Clone)]
enum DynamicRhs {
    /// Backward-Euler companion current `ieq = geq (v_prev(a) − v_prev(b))`
    /// into rows `ia`/`ib`. `geq = C/dt` is baked into the matrix, so the
    /// step size must not change across updates.
    Cap { ia: Option<usize>, ib: Option<usize>, geq: f64 },
    /// Voltage-source branch row set to the waveform value at the context
    /// time.
    Vsrc { row: usize, waveform: SourceWaveform },
}

/// The context-dependent half of a template's base RHS, shared by the
/// dense and sparse assembly templates (the split is purely about
/// *values*, with no backend dependency): the static contributions
/// (current sources), the [`DynamicRhs`] stamps, and the materialized
/// base vector the per-iteration assembly copies from.
#[derive(Debug, Clone)]
struct RhsTemplate {
    /// The materialized base RHS for the current context.
    base: Vec<f64>,
    /// Context-independent contributions (current sources).
    stat: Vec<f64>,
    /// Context-dependent stamps (see [`DynamicRhs`]).
    dynamic: Vec<DynamicRhs>,
    /// The time step baked into the owning template's matrix values
    /// (capacitor companion conductances); `None` for DC.
    step_dt: Option<f64>,
}

impl RhsTemplate {
    /// Materializes the base RHS for `ctx` from the recorded stamps.
    fn new(stat: Vec<f64>, dynamic: Vec<DynamicRhs>, ctx: &StampContext<'_>) -> Self {
        let mut this =
            Self { base: Vec::new(), stat, dynamic, step_dt: ctx.step.map(|(dt, _)| dt) };
        this.rebuild(ctx);
        this
    }

    /// Value-only rebuild for a new context **of the same kind** (same
    /// analysis, same `dt` — the matrix values bake those in).
    ///
    /// # Panics
    ///
    /// Panics if the context changes analysis kind or time step.
    fn update_context(&mut self, ctx: &StampContext<'_>) {
        assert_eq!(
            self.step_dt,
            ctx.step.map(|(dt, _)| dt),
            "template context update must keep the analysis kind and time step"
        );
        self.rebuild(ctx);
    }

    fn rebuild(&mut self, ctx: &StampContext<'_>) {
        self.base.clear();
        self.base.extend_from_slice(&self.stat);
        let prev = ctx.step.map(|(_, p)| p);
        for stamp in &self.dynamic {
            match stamp {
                DynamicRhs::Cap { ia, ib, geq } => {
                    let prev = prev.expect("capacitor companion stamp outside a transient step");
                    let v_prev = |idx: Option<usize>| idx.map_or(0.0, |i| prev[i]);
                    let ieq = geq * (v_prev(*ia) - v_prev(*ib));
                    stamp_rhs(&mut self.base, *ia, ieq);
                    stamp_rhs(&mut self.base, *ib, -ieq);
                }
                // Branch rows belong exclusively to their voltage
                // source, so assignment (not accumulation) is exact.
                DynamicRhs::Vsrc { row, waveform } => self.base[*row] = waveform.value_at(ctx.time),
            }
        }
    }

    /// Swaps in re-walked RHS content of the same analysis kind (the
    /// value-only retarget path) and re-materializes the base vector.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` changes the analysis kind or time step the
    /// template's matrix values bake in.
    fn repoint(&mut self, stat: Vec<f64>, dynamic: Vec<DynamicRhs>, ctx: &StampContext<'_>) {
        assert_eq!(
            self.step_dt,
            ctx.step.map(|(dt, _)| dt),
            "value-only retarget must keep the analysis kind and time step"
        );
        self.stat = stat;
        self.dynamic = dynamic;
        self.rebuild(ctx);
    }
}

/// One event of the deterministic netlist→stamps walk shared by the
/// dense and sparse assembly templates — both template construction
/// (`new`) **and** the value-only retarget path (`retarget_values`)
/// consume the identical event stream, which is what makes a patched
/// template bitwise equal to a freshly built one: same stamps, same
/// order, same summation sequence.
enum StampEvent {
    /// Matrix stamp at `(row(a), col(b))` — dropped when either side is
    /// ground. MOSFETs emit six zero-valued events to reserve their
    /// restamp slots (a no-op for the dense matrix, pattern slots for
    /// the CSR builder).
    Mat { a: Option<usize>, b: Option<usize>, v: f64 },
    /// Context-independent RHS contribution (current sources).
    StatRhs { node: Option<usize>, v: f64 },
    /// Context-dependent RHS stamp (see [`DynamicRhs`]).
    Dynamic(DynamicRhs),
    /// One nonlinear device's pre-resolved restamp data.
    Mos(MosStamp),
}

/// Walks `netlist` in device order, emitting every constant stamp for
/// the analysis `ctx` describes. The event sequence is a pure function
/// of the netlist and the analysis kind (`ctx.step` presence and `dt`);
/// two netlists with equal [`Netlist::topology_fingerprint`] produce
/// event streams of identical shape (same variants, same node indices,
/// same emission order), differing only in values.
fn walk_stamps(netlist: &Netlist, ctx: &StampContext<'_>, sink: &mut impl FnMut(StampEvent)) {
    let n_nodes = netlist.node_count() - 1;
    for device in netlist.devices() {
        match device {
            Device::Resistor { a: na, b: nb, ohms, .. } => {
                let g = 1.0 / ohms;
                let (ia, ib) = (node_index(*na), node_index(*nb));
                sink(StampEvent::Mat { a: ia, b: ia, v: g });
                sink(StampEvent::Mat { a: ib, b: ib, v: g });
                sink(StampEvent::Mat { a: ia, b: ib, v: -g });
                sink(StampEvent::Mat { a: ib, b: ia, v: -g });
            }
            Device::Capacitor { a: na, b: nb, farads, .. } => {
                if let Some((dt, _)) = ctx.step {
                    // Backward-Euler companion: geq ∥ ieq. The
                    // conductance goes into the matrix; the companion
                    // current is context-dependent (previous step) and
                    // recorded as a dynamic RHS stamp.
                    let geq = farads / dt;
                    let (ia, ib) = (node_index(*na), node_index(*nb));
                    sink(StampEvent::Mat { a: ia, b: ia, v: geq });
                    sink(StampEvent::Mat { a: ib, b: ib, v: geq });
                    sink(StampEvent::Mat { a: ia, b: ib, v: -geq });
                    sink(StampEvent::Mat { a: ib, b: ia, v: -geq });
                    sink(StampEvent::Dynamic(DynamicRhs::Cap { ia, ib, geq }));
                }
                // DC: capacitor is open — no stamp.
            }
            Device::Vsource { plus, minus, waveform, branch, .. } => {
                let k = Some(n_nodes + branch);
                let (ip, im) = (node_index(*plus), node_index(*minus));
                // Branch current enters the plus node.
                sink(StampEvent::Mat { a: ip, b: k, v: 1.0 });
                sink(StampEvent::Mat { a: im, b: k, v: -1.0 });
                sink(StampEvent::Mat { a: k, b: ip, v: 1.0 });
                sink(StampEvent::Mat { a: k, b: im, v: -1.0 });
                sink(StampEvent::Dynamic(DynamicRhs::Vsrc {
                    row: n_nodes + branch,
                    waveform: waveform.clone(),
                }));
            }
            Device::Isource { from, to, amps, .. } => {
                sink(StampEvent::StatRhs { node: node_index(*to), v: *amps });
                sink(StampEvent::StatRhs { node: node_index(*from), v: -*amps });
            }
            Device::Mosfet { drain, gate, source, model, w_um, l_um, .. } => {
                let p = match model.polarity {
                    crate::model::MosPolarity::Nmos => 1.0,
                    crate::model::MosPolarity::Pmos => -1.0,
                };
                let (d, g, s) = (node_index(*drain), node_index(*gate), node_index(*source));
                // Reserve the six conductance slots (explicit zeros) —
                // restamped every iteration.
                sink(StampEvent::Mat { a: d, b: g, v: 0.0 });
                sink(StampEvent::Mat { a: d, b: d, v: 0.0 });
                sink(StampEvent::Mat { a: d, b: s, v: 0.0 });
                sink(StampEvent::Mat { a: s, b: g, v: 0.0 });
                sink(StampEvent::Mat { a: s, b: d, v: 0.0 });
                sink(StampEvent::Mat { a: s, b: s, v: 0.0 });
                sink(StampEvent::Mos(MosStamp {
                    drain: d,
                    gate: g,
                    source: s,
                    model: *model,
                    ratio: w_um / l_um,
                    p,
                }));
            }
        }
    }
}

/// Cached MNA assembly for one `(netlist, context)` pair.
///
/// Everything except the MOSFETs is affine in the unknowns and constant
/// across Newton iterations — resistor/capacitor-companion conductances,
/// voltage-source incidence rows, source currents and the `gmin`
/// diagonal. The template stamps that constant part **once**; each
/// iteration then copies it ([`Matrix::copy_from`], a `memcpy`) and
/// restamps only the nonlinear devices, instead of re-walking the whole
/// netlist and re-zeroing the system.
#[derive(Debug, Clone)]
pub struct AssemblyTemplate {
    base: Matrix,
    rhs: RhsTemplate,
    mosfets: Vec<MosStamp>,
    n_nodes: usize,
    /// Topology fingerprint of the netlist this template was walked
    /// from — the key guarding the value-only retarget fast path.
    fingerprint: u64,
}

impl AssemblyTemplate {
    /// Builds the template: stamps every constant device, extracts the
    /// nonlinear ones. The template bakes in `ctx.time` and `ctx.step`
    /// (source values, capacitor companions) but **not** `ctx.gmin` —
    /// the gmin diagonal is applied per [`assemble_into`](Self::assemble_into)
    /// call, so one template serves an entire gmin continuation ladder.
    pub fn new(netlist: &Netlist, ctx: &StampContext<'_>) -> Self {
        let n_nodes = netlist.node_count() - 1;
        let n = netlist.unknown_count();
        let mut a = Matrix::zeros(n, n);
        let mut rhs_static = vec![0.0; n];
        let mut dynamic_rhs = Vec::new();
        let mut mosfets = Vec::new();

        walk_stamps(netlist, ctx, &mut |event| match event {
            StampEvent::Mat { a: ia, b: ib, v } => stamp(&mut a, ia, ib, v),
            StampEvent::StatRhs { node, v } => stamp_rhs(&mut rhs_static, node, v),
            StampEvent::Dynamic(d) => dynamic_rhs.push(d),
            StampEvent::Mos(m) => mosfets.push(m),
        });
        Self {
            base: a,
            rhs: RhsTemplate::new(rhs_static, dynamic_rhs, ctx),
            mosfets,
            n_nodes,
            fingerprint: netlist.topology_fingerprint(),
        }
    }

    /// Value-only retarget: if `netlist` has the same topology as the
    /// one this template was built from (checked via
    /// [`Netlist::topology_fingerprint`]), rewrites every
    /// device-parameter-dependent stamp value in place — no matrix
    /// allocation, no template rebuild — and returns `true`. The result
    /// is bitwise identical to a freshly built template: both paths
    /// consume the same stamp-walk event stream in the same order.
    /// Returns `false` (template untouched) on a topology mismatch.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` changes the analysis kind or time step.
    pub fn retarget_values(&mut self, netlist: &Netlist, ctx: &StampContext<'_>) -> bool {
        assert_eq!(
            self.rhs.step_dt,
            ctx.step.map(|(dt, _)| dt),
            "value-only retarget must keep the analysis kind and time step"
        );
        if netlist.topology_fingerprint() != self.fingerprint {
            return false;
        }
        let n = self.base.rows();
        for i in 0..n {
            for v in self.base.row_mut(i) {
                *v = 0.0;
            }
        }
        let mut rhs_static = vec![0.0; n];
        let mut dynamic_rhs = Vec::with_capacity(self.rhs.dynamic.len());
        let mut mos_i = 0;
        let base = &mut self.base;
        let mosfets = &mut self.mosfets;
        walk_stamps(netlist, ctx, &mut |event| match event {
            StampEvent::Mat { a: ia, b: ib, v } => stamp(base, ia, ib, v),
            StampEvent::StatRhs { node, v } => stamp_rhs(&mut rhs_static, node, v),
            StampEvent::Dynamic(d) => dynamic_rhs.push(d),
            StampEvent::Mos(m) => {
                mosfets[mos_i] = m;
                mos_i += 1;
            }
        });
        debug_assert_eq!(mos_i, self.mosfets.len(), "fingerprint-equal walk changed shape");
        self.rhs.repoint(rhs_static, dynamic_rhs, ctx);
        true
    }

    /// Re-points the template at a new context **of the same kind**: same
    /// analysis (DC stays DC, transient keeps the same `dt`), new source
    /// time and/or previous-step solution. Only the context-dependent RHS
    /// values are rebuilt — the matrix base, the stamp maps and (for the
    /// sparse analogue) the frozen factorization pattern are untouched,
    /// which is what lets every backward-Euler step after the first skip
    /// the netlist walk and the symbolic analysis.
    ///
    /// # Panics
    ///
    /// Panics if the context changes analysis kind or time step.
    pub fn update_context(&mut self, ctx: &StampContext<'_>) {
        self.rhs.update_context(ctx);
    }

    /// System dimension.
    pub fn dim(&self) -> usize {
        self.base.rows()
    }

    /// Number of nonlinear devices restamped per iteration.
    pub fn nonlinear_count(&self) -> usize {
        self.mosfets.len()
    }

    /// Assembles the linearized system around estimate `x` into
    /// caller-provided storage: constant part copied, the gmin diagonal
    /// applied, MOSFETs restamped.
    ///
    /// # Panics
    ///
    /// Panics if `a`, `rhs` or `x` have the wrong dimensions.
    pub fn assemble_into(&self, a: &mut Matrix, rhs: &mut [f64], x: &[f64], gmin: f64) {
        a.copy_from(&self.base);
        rhs.copy_from_slice(&self.rhs.base);
        assert_eq!(x.len(), self.dim(), "solution estimate dimension mismatch");

        // Floating-node / convergence gmin.
        for i in 0..self.n_nodes {
            a[(i, i)] += gmin;
        }

        for mos in &self.mosfets {
            let lin = mos.linearize(x);
            let (idx_d, idx_s) =
                if lin.swapped { (mos.source, mos.drain) } else { (mos.drain, mos.source) };
            let idx_g = mos.gate;
            stamp(a, idx_d, idx_g, lin.gm);
            stamp(a, idx_d, idx_d, lin.gds);
            stamp(a, idx_d, idx_s, -(lin.gm + lin.gds));
            stamp(a, idx_s, idx_g, -lin.gm);
            stamp(a, idx_s, idx_d, -lin.gds);
            stamp(a, idx_s, idx_s, lin.gm + lin.gds);
            stamp_rhs(rhs, idx_d, -lin.ieq_signed);
            stamp_rhs(rhs, idx_s, lin.ieq_signed);
        }
    }
}

/// Assembles the linearized MNA system around solution estimate `x`.
///
/// Returns `(matrix, rhs)` such that solving gives the *next* Newton
/// estimate directly (not a delta). One-shot convenience over
/// [`AssemblyTemplate`]; iteration loops should build the template once
/// and call [`AssemblyTemplate::assemble_into`].
pub fn assemble(netlist: &Netlist, x: &[f64], ctx: &StampContext<'_>) -> (Matrix, Vec<f64>) {
    let template = AssemblyTemplate::new(netlist, ctx);
    let n = template.dim();
    let mut a = Matrix::zeros(n, n);
    let mut rhs = vec![0.0; n];
    template.assemble_into(&mut a, &mut rhs, x, ctx.gmin);
    (a, rhs)
}

/// One MOSFET's pre-resolved stamp for the sparse assembly: the node/
/// model data plus the **CSR value indices** of its six conductance
/// positions, so the per-iteration restamp is direct array writes — no
/// pattern search, mirroring the dense template's indexed stores.
#[derive(Debug, Clone, Copy)]
struct SparseMosStamp {
    stamp: MosStamp,
    /// Value indices of ((d,g), (d,d), (d,s), (s,g), (s,d), (s,s)) in the
    /// *physical* drain/source naming; `None` where a terminal is ground.
    pdg: Option<usize>,
    pdd: Option<usize>,
    pds: Option<usize>,
    psg: Option<usize>,
    psd: Option<usize>,
    pss: Option<usize>,
}

/// Cached **CSR** MNA assembly for one `(netlist, context)` pair — the
/// sparse analogue of [`AssemblyTemplate`].
///
/// The CSR pattern is built once from the netlist with slots reserved for
/// everything that varies per iteration (MOSFET conductances, the `gmin`
/// diagonal); constant stamps live in the base value array. Each
/// [`assemble_into`](Self::assemble_into) is then a value-array `memcpy`
/// plus indexed restamps through a precomputed stamp→nonzero map — the
/// pattern never changes, which is also what lets [`SparseLu`] freeze its
/// symbolic factorization across the whole Newton/`gmin`-ladder/sweep
/// lifetime of the template.
#[derive(Debug, Clone)]
pub struct SparseAssemblyTemplate {
    base: CsrMatrix<f64>,
    rhs: RhsTemplate,
    mosfets: Vec<SparseMosStamp>,
    /// Value index of each node's diagonal (the `gmin` slots).
    gmin_idx: Vec<usize>,
    /// Push-order → value-index map over the stamp walk (gmin slots
    /// appended last): the `k`-th emitted non-ground matrix stamp lands
    /// at `base.values()[slot_of[k]]` — the value-only retarget writes
    /// through this instead of re-sorting a triplet builder.
    slot_of: Vec<usize>,
    /// Sorted, deduplicated value indices of everything that varies
    /// between assemblies of one template: the MOSFET restamp slots and
    /// the `gmin` diagonal — the dirty-input set for KLU-style partial
    /// refactorization.
    dirty_idx: Vec<usize>,
    /// The narrow dirty set: MOSFET restamp slots only. Valid whenever
    /// two consecutive assemblies used the **same** `gmin` (every rung of
    /// the ladder holds `gmin` constant across its Newton refreshes), in
    /// which case the gmin diagonal cancels out of the value delta and
    /// the partial refactorization touches far fewer rows.
    mos_dirty_idx: Vec<usize>,
    n_nodes: usize,
    /// Topology fingerprint of the netlist this template was walked
    /// from — the key guarding the value-only retarget fast path.
    fingerprint: u64,
}

impl SparseAssemblyTemplate {
    /// Builds the template: reserves the full pattern, stamps every
    /// constant device, resolves the nonzero indices of the per-iteration
    /// stamps. Like the dense template it bakes in `ctx.time` / `ctx.step`
    /// but not `ctx.gmin`.
    pub fn new(netlist: &Netlist, ctx: &StampContext<'_>) -> Self {
        let n_nodes = netlist.node_count() - 1;
        let n = netlist.unknown_count();
        let mut t = Triplets::new(n, n);
        let mut rhs_static = vec![0.0; n];
        let mut dynamic_rhs = Vec::new();
        let mut mos_stamps: Vec<MosStamp> = Vec::new();

        walk_stamps(netlist, ctx, &mut |event| match event {
            StampEvent::Mat { a, b, v } => {
                if let (Some(i), Some(j)) = (a, b) {
                    t.push(i, j, v);
                }
            }
            StampEvent::StatRhs { node, v } => stamp_rhs(&mut rhs_static, node, v),
            StampEvent::Dynamic(d) => dynamic_rhs.push(d),
            StampEvent::Mos(m) => mos_stamps.push(m),
        });
        // The gmin diagonal slots for every node.
        for i in 0..n_nodes {
            t.push(i, i, 0.0);
        }

        let base = t.to_csr();
        // Push-order → value-index map (the retarget scatter).
        let slot_of: Vec<usize> = t
            .entries()
            .iter()
            .map(|&(i, j, _)| base.value_index(i, j).expect("pushed entry is in the pattern"))
            .collect();
        let pos = |a: Option<usize>, b: Option<usize>| -> Option<usize> {
            match (a, b) {
                (Some(i), Some(j)) => {
                    Some(base.value_index(i, j).expect("reserved stamp slot in pattern"))
                }
                _ => None,
            }
        };
        let mosfets: Vec<SparseMosStamp> = mos_stamps
            .into_iter()
            .map(|stamp| SparseMosStamp {
                stamp,
                pdg: pos(stamp.drain, stamp.gate),
                pdd: pos(stamp.drain, stamp.drain),
                pds: pos(stamp.drain, stamp.source),
                psg: pos(stamp.source, stamp.gate),
                psd: pos(stamp.source, stamp.drain),
                pss: pos(stamp.source, stamp.source),
            })
            .collect();
        let gmin_idx: Vec<usize> = (0..n_nodes)
            .map(|i| base.value_index(i, i).expect("node diagonal in pattern"))
            .collect();
        let mut mos_dirty_idx: Vec<usize> = Vec::new();
        for m in &mosfets {
            mos_dirty_idx.extend([m.pdg, m.pdd, m.pds, m.psg, m.psd, m.pss].into_iter().flatten());
        }
        mos_dirty_idx.sort_unstable();
        mos_dirty_idx.dedup();
        let mut dirty_idx: Vec<usize> = gmin_idx.clone();
        dirty_idx.extend_from_slice(&mos_dirty_idx);
        dirty_idx.sort_unstable();
        dirty_idx.dedup();
        let rhs = RhsTemplate::new(rhs_static, dynamic_rhs, ctx);
        Self {
            base,
            rhs,
            mosfets,
            gmin_idx,
            slot_of,
            dirty_idx,
            mos_dirty_idx,
            n_nodes,
            fingerprint: netlist.topology_fingerprint(),
        }
    }

    /// Value-only retarget — the sparse analogue of
    /// [`AssemblyTemplate::retarget_values`]: on a fingerprint match,
    /// rewrites the CSR value array through the precomputed push-order →
    /// nonzero map (no triplet builder, no sort, no `value_index`
    /// searches) and refreshes the MOSFET restamp parameters, leaving
    /// the pattern — and therefore any frozen symbolic factorization
    /// built on it — untouched. Bitwise identical to a fresh
    /// [`SparseAssemblyTemplate::new`]: both paths accumulate the same
    /// stamp stream in push order, exactly as [`Triplets::to_csr`]
    /// merges duplicates. Returns `false` on a topology mismatch.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` changes the analysis kind or time step.
    pub fn retarget_values(&mut self, netlist: &Netlist, ctx: &StampContext<'_>) -> bool {
        assert_eq!(
            self.rhs.step_dt,
            ctx.step.map(|(dt, _)| dt),
            "value-only retarget must keep the analysis kind and time step"
        );
        if netlist.topology_fingerprint() != self.fingerprint {
            return false;
        }
        let n = self.base.rows();
        for v in self.base.values_mut() {
            *v = 0.0;
        }
        let mut rhs_static = vec![0.0; n];
        let mut dynamic_rhs = Vec::with_capacity(self.rhs.dynamic.len());
        let mut slot = 0usize;
        let mut mos_i = 0usize;
        let values = self.base.values_mut();
        // Pre-borrow the pieces the closure needs (splitting the
        // template's fields keeps the borrows disjoint).
        let slot_of = &self.slot_of;
        let mosfets = &mut self.mosfets;
        walk_stamps(netlist, ctx, &mut |event| match event {
            StampEvent::Mat { a, b, v } => {
                if a.is_some() && b.is_some() {
                    values[slot_of[slot]] += v;
                    slot += 1;
                }
            }
            StampEvent::StatRhs { node, v } => stamp_rhs(&mut rhs_static, node, v),
            StampEvent::Dynamic(d) => dynamic_rhs.push(d),
            StampEvent::Mos(m) => {
                mosfets[mos_i].stamp = m;
                mos_i += 1;
            }
        });
        debug_assert_eq!(
            slot + self.n_nodes,
            self.slot_of.len(),
            "fingerprint-equal walk changed shape"
        );
        debug_assert_eq!(mos_i, self.mosfets.len(), "fingerprint-equal walk changed shape");
        self.rhs.repoint(rhs_static, dynamic_rhs, ctx);
        true
    }

    /// Value indices of the stamps that vary between assemblies of this
    /// template (MOSFET restamps and the `gmin` diagonal) — the
    /// dirty-input set handed to
    /// [`glova_linalg::sparse::SparseLu::plan_partial`]. Exposed so
    /// benches and advanced callers can build partial-refactorization
    /// plans against factorizations of this template's systems.
    pub fn dirty_value_indices(&self) -> &[usize] {
        &self.dirty_idx
    }

    /// The **narrow** dirty set — MOSFET restamp slots only, the `gmin`
    /// diagonal excluded. Valid for refreshes whose assembly reused the
    /// previous refresh's `gmin`: the diagonal contribution is then
    /// bitwise unchanged, so only the nonlinear restamps can differ
    /// (this is every chord/Newton refresh after the first within one
    /// ladder rung).
    pub fn mos_dirty_value_indices(&self) -> &[usize] {
        &self.mos_dirty_idx
    }

    /// Re-points the template at a new context of the same kind — the
    /// sparse analogue of [`AssemblyTemplate::update_context`]: a
    /// value-only RHS rebuild, leaving the CSR pattern (and therefore any
    /// frozen symbolic factorization built on it) untouched.
    ///
    /// # Panics
    ///
    /// Panics if the context changes analysis kind or time step.
    pub fn update_context(&mut self, ctx: &StampContext<'_>) {
        self.rhs.update_context(ctx);
    }

    /// System dimension.
    pub fn dim(&self) -> usize {
        self.base.rows()
    }

    /// Number of nonlinear devices restamped per iteration.
    pub fn nonlinear_count(&self) -> usize {
        self.mosfets.len()
    }

    /// Stored pattern entries.
    pub fn nnz(&self) -> usize {
        self.base.nnz()
    }

    /// A working system with this template's pattern (assembled values
    /// are overwritten by [`assemble_into`](Self::assemble_into)).
    pub fn new_system(&self) -> CsrMatrix<f64> {
        self.base.clone()
    }

    /// Assembles the linearized system around estimate `x` into `a` /
    /// `rhs`: base values memcpy'd, `gmin` diagonal applied, MOSFETs
    /// restamped through the precomputed index map.
    ///
    /// # Panics
    ///
    /// Panics if `a` does not share this template's pattern size, or
    /// `rhs` / `x` have the wrong dimensions.
    pub fn assemble_into(&self, a: &mut CsrMatrix<f64>, rhs: &mut [f64], x: &[f64], gmin: f64) {
        assert_eq!(a.nnz(), self.base.nnz(), "working system pattern mismatch");
        assert_eq!(x.len(), self.dim(), "solution estimate dimension mismatch");
        a.values_mut().copy_from_slice(self.base.values());
        rhs.copy_from_slice(&self.rhs.base);
        let vals = a.values_mut();
        for &i in &self.gmin_idx {
            vals[i] += gmin;
        }
        for mos in &self.mosfets {
            let lin = mos.stamp.linearize(x);
            // Select the six positions under the current drain/source
            // role assignment (the reserved set is closed under the
            // swap).
            let (pdg, pdd, pds, psg, psd, pss) = if lin.swapped {
                (mos.psg, mos.pss, mos.psd, mos.pdg, mos.pds, mos.pdd)
            } else {
                (mos.pdg, mos.pdd, mos.pds, mos.psg, mos.psd, mos.pss)
            };
            let mut add = |idx: Option<usize>, v: f64| {
                if let Some(i) = idx {
                    vals[i] += v;
                }
            };
            add(pdg, lin.gm);
            add(pdd, lin.gds);
            add(pds, -(lin.gm + lin.gds));
            add(psg, -lin.gm);
            add(psd, -lin.gds);
            add(pss, lin.gm + lin.gds);
            let (idx_d, idx_s) = if lin.swapped {
                (mos.stamp.source, mos.stamp.drain)
            } else {
                (mos.stamp.drain, mos.stamp.source)
            };
            stamp_rhs(rhs, idx_d, -lin.ieq_signed);
            stamp_rhs(rhs, idx_s, lin.ieq_signed);
        }
    }
}

/// A backend-resolved MNA assembly template: the netlist walked once,
/// the constant stamps cached in the representation the chosen
/// [`SolverBackend`] factors.
#[derive(Debug, Clone)]
pub enum MnaTemplate {
    /// Dense base matrix + dense LU.
    Dense(AssemblyTemplate),
    /// CSR base + sparse LU with symbolic reuse.
    Sparse(SparseAssemblyTemplate),
}

impl MnaTemplate {
    /// Builds the template for `netlist`, resolving `backend` by the
    /// system's unknown count.
    pub fn new(netlist: &Netlist, ctx: &StampContext<'_>, backend: SolverBackend) -> Self {
        if backend.resolves_to_sparse(netlist.unknown_count()) {
            MnaTemplate::Sparse(SparseAssemblyTemplate::new(netlist, ctx))
        } else {
            MnaTemplate::Dense(AssemblyTemplate::new(netlist, ctx))
        }
    }

    /// System dimension.
    pub fn dim(&self) -> usize {
        match self {
            MnaTemplate::Dense(t) => t.dim(),
            MnaTemplate::Sparse(t) => t.dim(),
        }
    }

    /// Non-ground node count (the `gmin` / damping prefix of the
    /// unknowns).
    pub fn n_nodes(&self) -> usize {
        match self {
            MnaTemplate::Dense(t) => t.n_nodes,
            MnaTemplate::Sparse(t) => t.n_nodes,
        }
    }

    /// Whether the sparse backend was selected.
    pub fn is_sparse(&self) -> bool {
        matches!(self, MnaTemplate::Sparse(_))
    }

    /// Re-points the template at a new context of the same kind (see
    /// [`AssemblyTemplate::update_context`]).
    ///
    /// # Panics
    ///
    /// Panics if the context changes analysis kind or time step.
    pub fn update_context(&mut self, ctx: &StampContext<'_>) {
        match self {
            MnaTemplate::Dense(t) => t.update_context(ctx),
            MnaTemplate::Sparse(t) => t.update_context(ctx),
        }
    }

    /// Consumes the template into working state (system storage +
    /// factorization slot) for Newton solves. Keep one state across
    /// repeated solves — `gmin`-ladder rungs, corner/mismatch re-solves,
    /// benchmark sweeps — and the factorization storage (for sparse: the
    /// symbolic pattern and pivot order) is reused instead of recomputed.
    pub fn into_state(self) -> MnaState {
        let n = self.dim();
        MnaState {
            inner: match self {
                MnaTemplate::Dense(t) => StateInner::Dense {
                    a: Matrix::zeros(n, n),
                    rhs: vec![0.0; n],
                    lu: None,
                    template: t,
                },
                MnaTemplate::Sparse(t) => StateInner::Sparse {
                    a: t.new_system(),
                    rhs: vec![0.0; n],
                    lu: None,
                    template: t,
                },
            },
            repivots: 0,
            template_epoch: 0,
            factor_epoch: None,
            partial_plan: None,
            narrow_plan: None,
            ordering: FillOrdering::default(),
            assembled_gmin: f64::NAN,
            factor_gmin: None,
            plan_mode: PartialPlanMode::default(),
            factored_values: None,
            device_plans: Vec::new(),
            newton_iterations: 0,
            refactor_stats: RefactorStats::default(),
        }
    }

    /// [`into_state`](Self::into_state) without consuming the template
    /// (clones the cached base system).
    pub fn state(&self) -> MnaState {
        self.clone().into_state()
    }
}

/// Working storage for Newton solves over one [`MnaTemplate`]: the
/// template, the assembled system and the (re)usable factorization.
///
/// `MnaState` is `Clone` + `Send`, which is what per-worker solver
/// pooling builds on: clone a **primed** state (one that already carries
/// a factorization — see [`MnaState::prime`]) once per worker thread and
/// every clone shares the prototype's symbolic analysis (sparse pivot
/// order + fill pattern) while owning its own numeric storage. Cloning
/// shares no mutable state, so concurrently refactoring the clones with
/// different values is race-free and bitwise-deterministic.
#[derive(Debug, Clone)]
pub struct MnaState {
    inner: StateInner,
    /// Times the sparse path abandoned its frozen pivot order for a
    /// fresh Markowitz analysis (see [`MnaState::repivots`]).
    repivots: u64,
    /// Bumped whenever the template's matrix *values* are replaced
    /// wholesale (retarget / value-only retarget) — constant stamps can
    /// then no longer be assumed equal to the last factored input.
    template_epoch: u64,
    /// Template epoch the current factorization's values were computed
    /// under (`None` before the first successful refresh, or after a
    /// failed one). When it matches `template_epoch`, consecutive
    /// assemblies differ only at the template's dirty value set and the
    /// refresh can run a partial refactorization.
    factor_epoch: Option<u64>,
    /// Cached partial-refactorization schedule for the current sparse
    /// symbolic analysis; dropped whenever the factorization re-pivots.
    partial_plan: Option<SparsePartialPlan>,
    /// Cached **narrow** schedule (MOSFET dirty slots only, the gmin
    /// diagonal excluded) — used when the assembly's `gmin` matches the
    /// last factored one; dropped alongside `partial_plan` on re-pivot.
    narrow_plan: Option<SparsePartialPlan>,
    /// Fill-reducing ordering for fresh sparse symbolic analyses (first
    /// factor and post-collapse re-pivots). Markowitz by default;
    /// threaded in from [`NewtonOptions::ordering`] by the solve entry
    /// points.
    ordering: FillOrdering,
    /// `gmin` of the most recent [`assemble`](Self::assemble) (NaN before
    /// the first), compared against `factor_gmin` to pick the narrow
    /// dirty set.
    assembled_gmin: f64,
    /// `gmin` under which the current factorization's values were
    /// assembled (`None` before the first successful refresh or after a
    /// failed one — mirrors `factor_epoch`).
    factor_gmin: Option<f64>,
    /// Dirty-set selection policy for sparse partial refactorizations.
    plan_mode: PartialPlanMode,
    /// Snapshot of the assembled input values the current factorization
    /// was computed from (sparse backend, [`PartialPlanMode::PerDevice`]
    /// only; `None` before the first successful refresh or after a
    /// failed one). The bitwise diff of the next assembly against it is
    /// the exact per-device dirty set.
    factored_values: Option<Vec<f64>>,
    /// Small move-to-front cache of per-device partial schedules keyed
    /// by their exact dirty slot set — Newton chord refreshes and
    /// value-retargeted sweeps revisit the same few sets; dropped
    /// whenever the factorization re-pivots.
    device_plans: Vec<(Vec<usize>, SparsePartialPlan)>,
    /// Cumulative Newton/chord iterations run through this state — the
    /// deterministic work measure warm-started corner sweeps are gated
    /// on (wall time would be noisy; iteration count is exact).
    newton_iterations: u64,
    /// Cumulative full/partial refresh accounting.
    refactor_stats: RefactorStats,
}

/// Capacity of [`MnaState::device_plans`] — big enough for the handful
/// of dirty-set shapes one solve sequence revisits (per-rung MOSFET
/// sets, the post-retarget set), small enough that a linear scan wins.
const DEVICE_PLAN_CACHE: usize = 8;

/// Alias kept local so the `glova_linalg` type stays an implementation
/// detail of the state.
type SparsePartialPlan = glova_linalg::sparse::PartialPlan;

// One `MnaState` exists per solver (never collections of them), so the
// dense/sparse variant size imbalance costs nothing — boxing would only
// add an indirection to the hot assemble/solve path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum StateInner {
    Dense {
        template: AssemblyTemplate,
        a: Matrix,
        rhs: Vec<f64>,
        lu: Option<Lu>,
    },
    Sparse {
        template: SparseAssemblyTemplate,
        a: CsrMatrix<f64>,
        rhs: Vec<f64>,
        lu: Option<SparseLu<f64>>,
    },
}

impl MnaState {
    fn dim(&self) -> usize {
        match &self.inner {
            StateInner::Dense { template, .. } => template.dim(),
            StateInner::Sparse { template, .. } => template.dim(),
        }
    }

    fn n_nodes(&self) -> usize {
        match &self.inner {
            StateInner::Dense { template, .. } => template.n_nodes,
            StateInner::Sparse { template, .. } => template.n_nodes,
        }
    }

    /// Whether a factorization from an earlier refresh is available.
    fn has_factor(&self) -> bool {
        match &self.inner {
            StateInner::Dense { lu, .. } => lu.is_some(),
            StateInner::Sparse { lu, .. } => lu.is_some(),
        }
    }

    /// Assembles the linearized system around `x`.
    pub(crate) fn assemble(&mut self, x: &[f64], gmin: f64) {
        self.assembled_gmin = gmin;
        match &mut self.inner {
            StateInner::Dense { template, a, rhs, .. } => {
                template.assemble_into(a, rhs, x, gmin);
            }
            StateInner::Sparse { template, a, rhs, .. } => {
                template.assemble_into(a, rhs, x, gmin);
            }
        }
    }

    /// `out = rhs − A·x` over the currently assembled system.
    fn residual_into(&self, x: &[f64], out: &mut [f64]) {
        match &self.inner {
            StateInner::Dense { a, rhs, .. } => {
                a.mat_vec_into(x, out);
                for (r, b) in out.iter_mut().zip(rhs) {
                    *r = b - *r;
                }
            }
            StateInner::Sparse { a, rhs, .. } => {
                a.mat_vec_into(x, out);
                for (r, b) in out.iter_mut().zip(rhs) {
                    *r = b - *r;
                }
            }
        }
    }

    /// Factors (first use) or numerically re-factors the assembled
    /// system. The sparse path reuses the frozen pivot order/pattern and
    /// restricts the numeric pass to the factor rows reachable from the
    /// inputs that changed since the last successful refresh (KLU-style
    /// partial refactorization — bitwise identical to the full pass).
    /// Under [`PartialPlanMode::PerDevice`] (the default) the changed
    /// inputs are discovered **exactly**, by bitwise-diffing the
    /// assembled values against a snapshot of the last factored ones —
    /// so only the slots of devices that actually moved seed the
    /// closure, and an assembly identical to the factored one skips the
    /// elimination entirely. Under [`PartialPlanMode::Monolithic`] the
    /// template's declared dirty set (all MOSFET restamps + the `gmin`
    /// diagonal, or its gmin-free narrow subset) is used instead,
    /// requiring the template epoch to confirm no other value moved. If
    /// drifting values break a frozen pivot it transparently re-pivots
    /// (fresh Markowitz analysis, counted in [`Self::repivots`]) before
    /// giving up.
    pub(crate) fn refresh_factor(&mut self) -> Result<(), SpiceError> {
        let epoch = self.template_epoch;
        let partial_ok = self.factor_epoch == Some(epoch);
        // Whether the gmin diagonal is unchanged since the factored
        // assembly. (NaN never equals, so a pre-first-assembly state
        // can't take the gmin-free paths.)
        let gmin_clean = self.factor_gmin == Some(self.assembled_gmin);
        // The monolithic narrow (gmin-free) dirty set applies only when
        // the values can differ from the factored ones *solely* at the
        // MOSFET restamps: same template epoch AND the same gmin.
        let narrow_ok = partial_ok && gmin_clean;
        // Invalidate until the refresh succeeds: an error leaves the
        // factor values unspecified, so the next attempt must run full.
        // The snapshot is likewise consumed up front — it only describes
        // the factor again once this refresh lands.
        self.factor_epoch = None;
        self.factor_gmin = None;
        let snapshot = self.factored_values.take();
        let mut repivoted = false;
        match &mut self.inner {
            StateInner::Dense { a, lu, .. } => match lu {
                Some(f) => f.refactor(a).map_err(SpiceError::from)?,
                None => *lu = Some(a.lu().map_err(SpiceError::from)?),
            },
            StateInner::Sparse { a, lu, template, .. } => {
                // Rows the *successful* partial pass re-eliminated;
                // `None` means full-refactor work produced the factor
                // (plain refactor, fallback, fresh analysis or first
                // use). Stats are recorded only after the refresh
                // succeeds, classified by the path that actually ran.
                let mut partial_rows: Option<usize> = None;
                let mut device_pass = false;
                let mut narrow_pass = false;
                let refreshed = match lu.as_mut() {
                    Some(f) => {
                        // Exact per-device dirty set: the bitwise diff
                        // against the snapshot is valid whenever the
                        // snapshot exists — it is ground truth about
                        // what changed, independent of template epochs.
                        let exact: Option<Vec<usize>> = match (&snapshot, self.plan_mode) {
                            (Some(s), PartialPlanMode::PerDevice)
                                if s.len() == a.values().len() =>
                            {
                                Some(
                                    a.values()
                                        .iter()
                                        .zip(s.iter())
                                        .enumerate()
                                        .filter(|(_, (v, o))| v.to_bits() != o.to_bits())
                                        .map(|(k, _)| k)
                                        .collect(),
                                )
                            }
                            _ => None,
                        };
                        match exact {
                            Some(dirty) => {
                                device_pass = true;
                                narrow_pass = gmin_clean;
                                if dirty.is_empty() {
                                    // The assembly is bitwise the input
                                    // the factor was computed from — it
                                    // is already fresh.
                                    partial_rows = Some(0);
                                    Ok(())
                                } else {
                                    let plan = Self::device_plan(&mut self.device_plans, f, dirty);
                                    match f.refactor_partial(a, plan) {
                                        Ok(()) => {
                                            partial_rows = Some(plan.rows_eliminated());
                                            Ok(())
                                        }
                                        // A plan/symbolic mismatch cannot
                                        // normally happen (plans drop on
                                        // re-pivot); fall back to the full
                                        // pass defensively.
                                        Err(LinalgError::DimensionMismatch { .. }) => f.refactor(a),
                                        other => other,
                                    }
                                }
                            }
                            None if partial_ok => {
                                let (plan_slot, dirty) = if narrow_ok {
                                    (&mut self.narrow_plan, template.mos_dirty_value_indices())
                                } else {
                                    (&mut self.partial_plan, template.dirty_value_indices())
                                };
                                let plan = plan_slot.get_or_insert_with(|| f.plan_partial(dirty));
                                match f.refactor_partial(a, plan) {
                                    Ok(()) => {
                                        partial_rows = Some(plan.rows_eliminated());
                                        narrow_pass = narrow_ok;
                                        Ok(())
                                    }
                                    Err(LinalgError::DimensionMismatch { .. }) => f.refactor(a),
                                    other => other,
                                }
                            }
                            None => f.refactor(a),
                        }
                    }
                    None => Err(LinalgError::Singular { index: 0 }),
                };
                match (refreshed, lu.is_some()) {
                    (Ok(()), _) => {}
                    // A collapsed frozen pivot (or a first-use factor):
                    // fresh symbolic analysis under the configured
                    // fill-reducing ordering, schedules invalidated.
                    (Err(LinalgError::Singular { .. }), had_factor) => {
                        *lu = Some(
                            SparseLu::factor_with(a, self.ordering).map_err(SpiceError::from)?,
                        );
                        self.partial_plan = None;
                        self.narrow_plan = None;
                        self.device_plans.clear();
                        repivoted = had_factor;
                    }
                    (Err(e), _) => return Err(SpiceError::from(e)),
                }
                let n = template.dim() as u64;
                match partial_rows {
                    Some(rows) => {
                        self.refactor_stats.partial += 1;
                        if device_pass {
                            self.refactor_stats.device += 1;
                        }
                        if narrow_pass {
                            self.refactor_stats.narrow += 1;
                        }
                        self.refactor_stats.rows_eliminated += rows as u64;
                        self.refactor_stats.rows_total += n;
                    }
                    None => {
                        self.refactor_stats.full += 1;
                        self.refactor_stats.rows_eliminated += n;
                        self.refactor_stats.rows_total += n;
                    }
                }
            }
        }
        if repivoted {
            self.repivots += 1;
        }
        // Record what this factor was computed from so the next refresh
        // can diff against it (reusing the consumed snapshot's buffer).
        if self.plan_mode == PartialPlanMode::PerDevice {
            if let StateInner::Sparse { a, .. } = &self.inner {
                let mut buf = snapshot.unwrap_or_default();
                buf.clear();
                buf.extend_from_slice(a.values());
                self.factored_values = Some(buf);
            }
        }
        self.factor_epoch = Some(epoch);
        self.factor_gmin = Some(self.assembled_gmin);
        Ok(())
    }

    /// Looks up — or computes and caches — the partial schedule for an
    /// exact dirty slot set (move-to-front, capped at
    /// [`DEVICE_PLAN_CACHE`]).
    fn device_plan<'p>(
        cache: &'p mut Vec<(Vec<usize>, SparsePartialPlan)>,
        f: &SparseLu<f64>,
        dirty: Vec<usize>,
    ) -> &'p SparsePartialPlan {
        if let Some(i) = cache.iter().position(|(d, _)| *d == dirty) {
            let hit = cache.remove(i);
            cache.insert(0, hit);
        } else {
            let plan = f.plan_partial(&dirty);
            cache.insert(0, (dirty, plan));
            cache.truncate(DEVICE_PLAN_CACHE);
        }
        &cache[0].1
    }

    /// Cumulative numeric-refresh accounting (see [`RefactorStats`]).
    pub fn refactor_stats(&self) -> RefactorStats {
        self.refactor_stats
    }

    /// Times a frozen sparse pivot collapsed numerically and a fresh
    /// Markowitz analysis replaced it. A state that re-pivoted no longer
    /// carries the *canonical* pivot order its pool siblings share, so
    /// pools retire it (replacing it with a fresh prototype clone) to
    /// keep results independent of which worker solved which point.
    /// Topology changes are **not** counted here — they are reported
    /// explicitly as [`RetargetOutcome::Topology`] by
    /// [`retarget`](Self::retarget).
    pub fn repivots(&self) -> u64 {
        self.repivots
    }

    /// Whether this state runs the sparse backend.
    pub fn is_sparse(&self) -> bool {
        matches!(self.inner, StateInner::Sparse { .. })
    }

    /// Sets the fill-reducing ordering used for **fresh** sparse symbolic
    /// analyses (the first factorization and any post-collapse re-pivot).
    /// A factorization already frozen is untouched — call this before
    /// [`prime`](Self::prime) to control the symbolic analysis every
    /// clone of this state will share.
    pub fn set_ordering(&mut self, ordering: FillOrdering) {
        self.ordering = ordering;
    }

    /// The fill-reducing ordering fresh symbolic analyses run under.
    pub fn ordering(&self) -> FillOrdering {
        self.ordering
    }

    /// Sets the dirty-set policy for sparse partial refactorizations
    /// (see [`PartialPlanMode`]); solver configuration, so it survives
    /// topology retargets. Switching drops the exact-diff snapshot so
    /// the next refresh re-establishes its invariant from scratch.
    pub fn set_partial_plan_mode(&mut self, mode: PartialPlanMode) {
        if self.plan_mode != mode {
            self.plan_mode = mode;
            self.factored_values = None;
            self.device_plans.clear();
        }
    }

    /// The dirty-set policy sparse partial refactorizations run under.
    pub fn partial_plan_mode(&self) -> PartialPlanMode {
        self.plan_mode
    }

    /// Cumulative Newton/chord iterations run through this state (all
    /// solves, all `gmin` rungs) — survives topology retargets, like the
    /// re-pivot counter.
    pub fn newton_iterations(&self) -> u64 {
        self.newton_iterations
    }

    /// Assembles the system at the all-zeros estimate under `gmin` and
    /// factors it, so the state carries a factorization before any solve
    /// — on the sparse backend that is the **symbolic analysis** (pivot
    /// order + fill pattern). Priming a prototype once and cloning it per
    /// worker is how a sweep shares one symbolic analysis across threads;
    /// priming never changes results (the Newton loop always refreshes
    /// the factor numerically before its first solve).
    ///
    /// # Errors
    ///
    /// [`SpiceError::SingularMatrix`] if the primed system cannot be
    /// factored (structurally singular netlist).
    pub fn prime(&mut self, gmin: f64) -> Result<(), SpiceError> {
        let x = vec![0.0; self.dim()];
        self.assemble(&x, gmin);
        self.refresh_factor()
    }

    /// Re-points the state at a freshly built template of the **same
    /// topology** (same backend, dimension and sparsity pattern), keeping
    /// the factorization storage so the next refresh stays numeric-only —
    /// the sweep primitive behind corner/mismatch campaigns, where every
    /// point is the same circuit graph with different device values
    /// (returns [`RetargetOutcome::Pattern`]). A template of a different
    /// shape or pattern replaces the state wholesale (working storage
    /// rebuilt, factorization dropped — [`RetargetOutcome::Topology`],
    /// the signal on which solver pools retire the instance).
    ///
    /// Callers that still hold the netlist should prefer
    /// [`retarget_values`](Self::retarget_values), which skips the
    /// template build entirely when the topology is unchanged.
    pub fn retarget(&mut self, template: MnaTemplate) -> RetargetOutcome {
        match (&mut self.inner, template) {
            (StateInner::Dense { template: slot, a, .. }, MnaTemplate::Dense(t))
                if t.dim() == a.rows() =>
            {
                // The dense refactor overwrites the factor storage in
                // full, so keeping the stale `lu` slot is purely an
                // allocation reuse.
                *slot = t;
                self.template_epoch += 1;
                RetargetOutcome::Pattern
            }
            (StateInner::Sparse { template: slot, .. }, MnaTemplate::Sparse(t))
                if t.base.same_pattern(&slot.base) =>
            {
                // Identical pattern: the working system and the frozen
                // symbolic factorization both remain valid; assembly
                // overwrites every value.
                *slot = t;
                self.template_epoch += 1;
                RetargetOutcome::Pattern
            }
            (_, template) => {
                // Wholesale replacement abandons whatever factorization
                // (and, on sparse, canonical pivot order) the state
                // carried — reported explicitly so solver pools retire
                // this instance instead of returning it to the free
                // list with non-canonical symbolic state. The numeric
                // re-pivot counter is preserved: it tracks collapsed
                // frozen pivots, not topology changes. The ordering
                // choice likewise survives — it is solver configuration,
                // not per-topology state.
                let repivots = self.repivots;
                let ordering = self.ordering;
                let plan_mode = self.plan_mode;
                let newton_iterations = self.newton_iterations;
                *self = template.into_state();
                self.repivots = repivots;
                self.ordering = ordering;
                self.plan_mode = plan_mode;
                self.newton_iterations = newton_iterations;
                RetargetOutcome::Topology
            }
        }
    }

    /// Value-only retarget: rewrites the template's stamp values in
    /// place from `netlist` when its topology fingerprint matches —
    /// no template rebuild, no allocation, factorization kept. Returns
    /// `false` (state untouched) on a mismatch; the caller then falls
    /// back to [`retarget`](Self::retarget) with a freshly built
    /// template.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` changes the analysis kind or time step the
    /// template was built for.
    pub fn retarget_values(&mut self, netlist: &Netlist, ctx: &StampContext<'_>) -> bool {
        let patched = match &mut self.inner {
            StateInner::Dense { template, .. } => template.retarget_values(netlist, ctx),
            StateInner::Sparse { template, .. } => template.retarget_values(netlist, ctx),
        };
        if patched {
            self.template_epoch += 1;
        }
        patched
    }

    /// Re-points the underlying template at a new context of the same
    /// kind (see [`AssemblyTemplate::update_context`]).
    ///
    /// # Panics
    ///
    /// Panics if the context changes analysis kind or time step.
    pub fn update_context(&mut self, ctx: &StampContext<'_>) {
        match &mut self.inner {
            StateInner::Dense { template, .. } => template.update_context(ctx),
            StateInner::Sparse { template, .. } => template.update_context(ctx),
        }
    }

    /// Solves the factored system for `b` into `dx`.
    ///
    /// # Panics
    ///
    /// Panics if no factorization is present.
    fn solve_into(&mut self, b: &[f64], dx: &mut Vec<f64>) {
        match &mut self.inner {
            StateInner::Dense { lu, .. } => {
                lu.as_ref().expect("factorization present after refresh").solve_into(b, dx);
            }
            StateInner::Sparse { lu, .. } => {
                lu.as_mut().expect("factorization present after refresh").solve_into(b, dx);
            }
        }
    }

    /// Solves the factored system for `nrhs` right-hand sides stacked
    /// back to back in `b` (side `r` at `b[r·n .. (r+1)·n]`) — one
    /// factor streaming pass for the whole batch, bitwise identical per
    /// side to repeated [`solve_into`](Self::solve_into).
    ///
    /// # Panics
    ///
    /// Panics if no factorization is present or `b.len() ≠ n·nrhs`.
    pub(crate) fn solve_batch_into(&mut self, b: &[f64], x: &mut Vec<f64>, nrhs: usize) {
        match &mut self.inner {
            StateInner::Dense { lu, .. } => {
                lu.as_ref()
                    .expect("factorization present after refresh")
                    .solve_into_batch(b, x, nrhs);
            }
            StateInner::Sparse { lu, .. } => {
                lu.as_mut()
                    .expect("factorization present after refresh")
                    .solve_into_batch(b, x, nrhs);
            }
        }
    }

    /// Number of nonlinear devices restamped per assembly.
    pub(crate) fn nonlinear_count(&self) -> usize {
        match &self.inner {
            StateInner::Dense { template, .. } => template.nonlinear_count(),
            StateInner::Sparse { template, .. } => template.nonlinear_count(),
        }
    }

    /// Copies the most recently assembled right-hand side into `out`.
    pub(crate) fn rhs_into(&self, out: &mut [f64]) {
        match &self.inner {
            StateInner::Dense { rhs, .. } => out.copy_from_slice(rhs),
            StateInner::Sparse { rhs, .. } => out.copy_from_slice(rhs),
        }
    }

    /// FNV-1a over the assembled matrix values' bit patterns — the guard
    /// batched corner sweeps use to verify every variant shares one
    /// matrix bitwise (source-only perturbations never touch it).
    pub(crate) fn matrix_value_hash(&self) -> u64 {
        const FNV_PRIME: u64 = 0x100_0000_01b3;
        let mut acc = 0xcbf2_9ce4_8422_2325u64;
        match &self.inner {
            StateInner::Dense { a, .. } => {
                for i in 0..a.rows() {
                    for &v in a.row(i) {
                        acc = (acc ^ v.to_bits()).wrapping_mul(FNV_PRIME);
                    }
                }
            }
            StateInner::Sparse { a, .. } => {
                for &v in a.values() {
                    acc = (acc ^ v.to_bits()).wrapping_mul(FNV_PRIME);
                }
            }
        }
        acc
    }
}

/// When the Newton loop re-factors the Jacobian.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JacobianStrategy {
    /// Textbook Newton: factor a fresh Jacobian every iteration.
    Full,
    /// Chord (frozen-Jacobian) iteration: reuse the last LU factorization
    /// while the update norm keeps contracting, re-factoring only on slow
    /// convergence. The residual is always evaluated against the *fresh*
    /// linearization, so the converged solution is the same fixed point
    /// as full Newton — only the path (and the per-iteration O(n³)
    /// factorization cost) changes.
    Chord {
        /// Max-delta (volts) above which the Jacobian is always refreshed
        /// — far from the solution the linearization changes too fast for
        /// a stale factorization to help.
        refactor_threshold: f64,
        /// Required shrink ratio of the update norm for a stale
        /// factorization to be kept another iteration; a chord step whose
        /// `max_delta > contraction × previous` triggers a refresh.
        contraction: f64,
    },
}

impl JacobianStrategy {
    /// The default chord parameters: reuse the factorization inside the
    /// 50 mV convergence basin, demand 2× contraction per step.
    pub const CHORD_DEFAULT: Self = Self::Chord { refactor_threshold: 0.05, contraction: 0.5 };
}

impl Default for JacobianStrategy {
    fn default() -> Self {
        Self::CHORD_DEFAULT
    }
}

/// Newton-iteration controls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonOptions {
    /// Maximum iterations before declaring non-convergence.
    pub max_iterations: usize,
    /// Convergence threshold on the max voltage update, volts.
    pub tolerance: f64,
    /// Per-iteration clamp on any voltage update, volts (damping).
    pub max_step: f64,
    /// Jacobian refresh policy (chord reuse by default).
    pub strategy: JacobianStrategy,
    /// Linear-solver backend (size-based auto-selection by default).
    pub backend: SolverBackend,
    /// Fill-reducing ordering for fresh sparse symbolic analyses
    /// (Markowitz greedy by default; [`FillOrdering::Amd`] pre-orders
    /// the pattern with approximate minimum degree, which wins on 2-D
    /// coupling structures like sense-amp arrays).
    pub ordering: FillOrdering,
}

impl NewtonOptions {
    /// Options forcing a fresh factorization every iteration — the
    /// reference semantics the chord path is parity-tested against.
    pub fn full_newton() -> Self {
        Self { strategy: JacobianStrategy::Full, ..Self::default() }
    }

    /// Overrides the solver backend (builder style).
    pub fn with_backend(mut self, backend: SolverBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Overrides the sparse fill-reducing ordering (builder style).
    pub fn with_ordering(mut self, ordering: FillOrdering) -> Self {
        self.ordering = ordering;
        self
    }
}

impl Default for NewtonOptions {
    fn default() -> Self {
        Self {
            max_iterations: 200,
            tolerance: 1e-9,
            max_step: 0.5,
            strategy: JacobianStrategy::default(),
            backend: SolverBackend::default(),
            ordering: FillOrdering::default(),
        }
    }
}

/// Runs damped Newton iteration from `initial`, returning the solution.
///
/// # Errors
///
/// [`SpiceError::NonConvergent`] if the iteration stalls,
/// [`SpiceError::SingularMatrix`] if a linear solve fails.
pub fn newton_solve(
    netlist: &Netlist,
    initial: &[f64],
    ctx: &StampContext<'_>,
    options: &NewtonOptions,
) -> Result<Vec<f64>, SpiceError> {
    // The constant stamps are assembled once; per-iteration work is a
    // memcpy of the base system plus the nonlinear restamp.
    let mut state = MnaTemplate::new(netlist, ctx, options.backend).into_state();
    newton_solve_with_state(&mut state, initial, ctx.gmin, options)
}

/// [`newton_solve`] over a prebuilt [`MnaTemplate`] — callers that solve
/// the same `(netlist, time, step)` system repeatedly build the template
/// once instead of re-walking the netlist per solve. Allocates a fresh
/// [`MnaState`]; callers that additionally want factorization reuse
/// *across* solves (the DC `gmin` ladder) should hold a state and use
/// [`newton_solve_with_state`].
///
/// # Errors
///
/// See [`newton_solve`].
///
/// # Panics
///
/// Panics if `initial.len()` differs from the template dimension.
pub fn newton_solve_with_template(
    template: &MnaTemplate,
    initial: &[f64],
    gmin: f64,
    options: &NewtonOptions,
) -> Result<Vec<f64>, SpiceError> {
    let mut state = template.state();
    newton_solve_with_state(&mut state, initial, gmin, options)
}

/// The Newton/chord iteration over persistent working state.
///
/// The state owns the assembled system and the factorization. On the
/// dense backend the factorization slot avoids per-refresh allocation;
/// on the sparse backend it additionally carries the **symbolic
/// factorization** (pivot order + fill pattern), so every refresh after
/// the first — across iterations, `gmin` rungs and repeated solves of a
/// perturbed system — is a numeric-only re-elimination.
///
/// # Errors
///
/// [`SpiceError::NonConvergent`] if the iteration stalls,
/// [`SpiceError::SingularMatrix`] if a linear solve fails.
///
/// # Panics
///
/// Panics if `initial.len()` differs from the state dimension.
pub fn newton_solve_with_state(
    state: &mut MnaState,
    initial: &[f64],
    gmin: f64,
    options: &NewtonOptions,
) -> Result<Vec<f64>, SpiceError> {
    newton_solve_inner(state, initial, gmin, options, false)
}

/// [`newton_solve_with_state`] with a **warm first iteration**: when the
/// state already carries a factorization (e.g. from the previous corner
/// of a sweep) and the strategy is chord, the first step reuses it
/// instead of refreshing — a chord step through the neighboring corner's
/// Jacobian. The residual is always evaluated against the *current*
/// system, so the converged fixed point is unchanged; only the path
/// (and the saved first refactorization) differs. If the inherited
/// Jacobian steps poorly, the ordinary chord stall rule triggers a
/// refresh on the next iteration.
///
/// # Errors
///
/// See [`newton_solve_with_state`].
///
/// # Panics
///
/// Panics if `initial.len()` differs from the state dimension.
pub fn newton_solve_with_state_warm(
    state: &mut MnaState,
    initial: &[f64],
    gmin: f64,
    options: &NewtonOptions,
) -> Result<Vec<f64>, SpiceError> {
    newton_solve_inner(state, initial, gmin, options, true)
}

fn newton_solve_inner(
    state: &mut MnaState,
    initial: &[f64],
    gmin: f64,
    options: &NewtonOptions,
    warm: bool,
) -> Result<Vec<f64>, SpiceError> {
    let n = state.dim();
    assert_eq!(initial.len(), n, "initial guess dimension mismatch");
    // Fresh symbolic analyses inside this solve (first factor, re-pivot
    // recovery) honor the caller's ordering choice. A factorization the
    // state already carries is never re-ordered here.
    state.set_ordering(options.ordering);
    let n_nodes = state.n_nodes();
    let mut x = initial.to_vec();

    let mut residual = vec![0.0; n];
    let mut dx = Vec::with_capacity(n);
    // Whether the factorization is from an *earlier* iterate (chord
    // state). A factor inherited from a previous solve is always stale.
    let mut lu_is_stale = state.has_factor();
    let mut refresh_next = false;
    // Whether the current factorization carries a singularity-recovery
    // diagonal boost (see below). A boosted Jacobian shrinks the step —
    // a small update no longer implies a stationary point — so
    // convergence is never accepted off a boosted factor.
    let mut boosted = false;
    let mut last_max_delta = f64::INFINITY;
    // Warm start: take the very first step through the inherited factor
    // (chord only — a factor to inherit must exist). Consumed once; the
    // stall rule governs every later refresh as usual.
    let mut skip_refresh_once = warm && state.has_factor();

    for _ in 0..options.max_iterations {
        state.newton_iterations += 1;
        state.assemble(&x, gmin);
        // residual = rhs − A·x; the Newton/chord step solves J·dx = residual.
        state.residual_into(&x, &mut residual);

        let refresh = match options.strategy {
            JacobianStrategy::Full => true,
            JacobianStrategy::Chord { refactor_threshold, .. } => {
                !std::mem::take(&mut skip_refresh_once)
                    && (!state.has_factor() || refresh_next || last_max_delta > refactor_threshold)
            }
        };
        if refresh {
            match state.refresh_factor() {
                Ok(()) => boosted = false,
                Err(SpiceError::SingularMatrix) => {
                    // Elimination-level cancellation at a wild iterate
                    // (classically: the V-source border block of a long
                    // unloaded mid-rail chain with every device cut off).
                    // Retry with an escalating diagonal boost: the boosted
                    // matrix is only the *Jacobian* — the step still
                    // targets the residual of the true system, so this is
                    // an inexact-Newton step whose fixed point is
                    // unchanged, and the path only activates where the
                    // solve previously aborted outright.
                    let mut recovered = false;
                    for boost in [1e3, 1e6, 1e9] {
                        state.assemble(&x, gmin * boost);
                        if state.refresh_factor().is_ok() {
                            recovered = true;
                            break;
                        }
                    }
                    if !recovered {
                        return Err(SpiceError::SingularMatrix);
                    }
                    boosted = true;
                }
                Err(e) => return Err(e),
            }
            lu_is_stale = false;
        }
        state.solve_into(&residual, &mut dx);

        // Damped update with per-component clamp on node voltages.
        let mut max_delta = 0.0f64;
        for i in 0..n {
            let mut delta = dx[i];
            if i < n_nodes {
                delta = delta.clamp(-options.max_step, options.max_step);
            }
            x[i] += delta;
            if i < n_nodes {
                max_delta = max_delta.max(delta.abs());
            }
        }
        // Convergence requires a small update AND a finite iterate:
        // `f64::max` silently discards NaN deltas and branch-current
        // rows (i ≥ n_nodes) are not folded into `max_delta` at all, so
        // without the finiteness check a NaN/inf excursion could return
        // as a "converged" operating point instead of erroring out
        // through the iteration budget.
        if max_delta < options.tolerance && x.iter().all(|v| v.is_finite()) {
            if !boosted {
                return Ok(x);
            }
            // A tiny step through a heavily boosted Jacobian is not
            // evidence of convergence (dx ≈ residual / boost). Force a
            // nominal-Jacobian refresh and keep iterating; only a small
            // step under the true Jacobian returns. If the nominal
            // system stays singular here the recovery re-boosts, and the
            // iteration budget eventually reports non-convergence loudly
            // instead of a silently wrong operating point.
            refresh_next = true;
            lu_is_stale = true;
            last_max_delta = f64::INFINITY;
            continue;
        }
        // A stale-Jacobian step that failed to contract enough means the
        // chord iteration is stalling: refresh on the next pass.
        refresh_next = matches!(
            options.strategy,
            JacobianStrategy::Chord { contraction, .. }
                if lu_is_stale && max_delta > contraction * last_max_delta
        );
        lu_is_stale = true;
        last_max_delta = max_delta;
    }
    // Measure the final update magnitude as the reported residual.
    state.assemble(&x, gmin);
    state.residual_into(&x, &mut residual);
    let residual = residual.iter().fold(0.0f64, |m, r| m.max(r.abs()));
    Err(SpiceError::NonConvergent { residual })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::GROUND;

    #[test]
    fn divider_assembles_and_solves_linearly() {
        let mut nl = Netlist::new();
        let vin = nl.node("in");
        let mid = nl.node("mid");
        nl.vsource("V1", vin, GROUND, 2.0);
        nl.resistor("R1", vin, mid, 1e3);
        nl.resistor("R2", mid, GROUND, 3e3);
        let ctx = StampContext { time: 0.0, step: None, gmin: 1e-12 };
        let x0 = vec![0.0; nl.unknown_count()];
        let x = newton_solve(&nl, &x0, &ctx, &NewtonOptions::default()).unwrap();
        assert!((x[vin.index() - 1] - 2.0).abs() < 1e-9);
        assert!((x[mid.index() - 1] - 1.5).abs() < 1e-6);
    }

    #[test]
    fn isource_into_resistor() {
        let mut nl = Netlist::new();
        let out = nl.node("out");
        nl.isource("I1", GROUND, out, 1e-3);
        nl.resistor("R1", out, GROUND, 2e3);
        let ctx = StampContext { time: 0.0, step: None, gmin: 1e-12 };
        let x = newton_solve(&nl, &[0.0], &ctx, &NewtonOptions::default()).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn vsource_branch_current_is_reported() {
        // 1 V across 1 kΩ: branch current = −1 mA (flows out of plus
        // terminal through the external circuit).
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V1", a, GROUND, 1.0);
        nl.resistor("R1", a, GROUND, 1e3);
        let ctx = StampContext { time: 0.0, step: None, gmin: 1e-12 };
        let x = newton_solve(&nl, &[0.0, 0.0], &ctx, &NewtonOptions::default()).unwrap();
        let n_nodes = nl.node_count() - 1;
        let branch = n_nodes + nl.vsource_branch("V1").unwrap();
        assert!((x[branch] + 1e-3).abs() < 1e-9, "branch current {}", x[branch]);
    }

    #[test]
    fn template_matches_direct_assembly() {
        // Mixed linear + nonlinear netlist: template restamp must agree
        // with a from-scratch assembly at several estimates.
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let vin = nl.node("vin");
        let out = nl.node("out");
        nl.vsource("VDD", vdd, GROUND, 0.9);
        nl.vsource("VIN", vin, GROUND, 0.45);
        nl.resistor("RL", vdd, out, 10e3);
        nl.mosfet("M1", out, vin, GROUND, crate::model::MosModel::nmos_28nm(), 2.0, 0.1);
        let ctx = StampContext { time: 0.0, step: None, gmin: 1e-9 };
        let template = AssemblyTemplate::new(&nl, &ctx);
        assert_eq!(template.nonlinear_count(), 1);
        let n = nl.unknown_count();
        for estimate in [vec![0.0; n], vec![0.3; n], vec![0.9; n]] {
            let (a_direct, rhs_direct) = assemble(&nl, &estimate, &ctx);
            let mut a = glova_linalg::Matrix::zeros(n, n);
            let mut rhs = vec![0.0; n];
            template.assemble_into(&mut a, &mut rhs, &estimate, ctx.gmin);
            assert_eq!(a, a_direct);
            assert_eq!(rhs, rhs_direct);
        }
    }

    #[test]
    fn chord_and_full_newton_agree() {
        // Strongly nonlinear CMOS inverter at mid-rail input: the chord
        // iteration must land on the same operating point as full Newton
        // to well within the Newton tolerance.
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let vin = nl.node("vin");
        let out = nl.node("out");
        nl.vsource("VDD", vdd, GROUND, 0.9);
        nl.vsource("VIN", vin, GROUND, 0.42);
        nl.mosfet("MP", out, vin, vdd, crate::model::MosModel::pmos_28nm(), 2.0, 0.05);
        nl.mosfet("MN", out, vin, GROUND, crate::model::MosModel::nmos_28nm(), 1.0, 0.05);
        let ctx = StampContext { time: 0.0, step: None, gmin: 1e-9 };
        let x0 = vec![0.0; nl.unknown_count()];
        let full = newton_solve(&nl, &x0, &ctx, &NewtonOptions::full_newton()).unwrap();
        let chord = newton_solve(&nl, &x0, &ctx, &NewtonOptions::default()).unwrap();
        for (c, f) in chord.iter().zip(&full) {
            assert!((c - f).abs() < 1e-9, "chord {c} vs full {f}");
        }
    }

    #[test]
    fn backend_parse_and_auto_resolution() {
        assert_eq!(SolverBackend::parse("dense"), Ok(SolverBackend::Dense));
        assert_eq!(SolverBackend::parse("sparse"), Ok(SolverBackend::Sparse));
        assert_eq!(SolverBackend::parse("auto"), Ok(SolverBackend::Auto));
        assert!(SolverBackend::parse("lapack").is_err());
        let t = SolverBackend::AUTO_SPARSE_THRESHOLD;
        assert!(!SolverBackend::Auto.resolves_to_sparse(t - 1));
        assert!(SolverBackend::Auto.resolves_to_sparse(t));
        assert!(SolverBackend::Sparse.resolves_to_sparse(1));
        assert!(!SolverBackend::Dense.resolves_to_sparse(10_000));
        assert_eq!(SolverBackend::Sparse.to_string(), "sparse");
    }

    /// A small mixed netlist exercising every stamp kind in DC.
    fn mixed_netlist() -> Netlist {
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let vin = nl.node("vin");
        let out = nl.node("out");
        let tail = nl.node("tail");
        nl.vsource("VDD", vdd, GROUND, 0.9);
        nl.vsource("VIN", vin, GROUND, 0.42);
        nl.resistor("RL", vdd, out, 10e3);
        nl.isource("IB", GROUND, tail, 50e-6);
        nl.resistor("RT", tail, GROUND, 40e3);
        nl.mosfet("MP", out, vin, vdd, crate::model::MosModel::pmos_28nm(), 2.0, 0.05);
        nl.mosfet("MN", out, vin, tail, crate::model::MosModel::nmos_28nm(), 1.0, 0.05);
        nl
    }

    #[test]
    fn sparse_template_assembles_identically_to_dense() {
        // The CSR assembly, densified, must agree entry-for-entry with
        // the dense template at several estimates and gmin values —
        // both run the same linearization, so equality is exact.
        let nl = mixed_netlist();
        let ctx = StampContext { time: 0.0, step: None, gmin: 1e-9 };
        let dense = AssemblyTemplate::new(&nl, &ctx);
        let sparse = SparseAssemblyTemplate::new(&nl, &ctx);
        assert_eq!(sparse.dim(), dense.dim());
        assert_eq!(sparse.nonlinear_count(), dense.nonlinear_count());
        let n = nl.unknown_count();
        let mut a_sparse = sparse.new_system();
        let mut rhs_sparse = vec![0.0; n];
        let mut a_dense = Matrix::zeros(n, n);
        let mut rhs_dense = vec![0.0; n];
        for (estimate, gmin) in [(vec![0.0; n], 1e-3), (vec![0.3; n], 1e-9), (vec![0.9; n], 1e-12)]
        {
            dense.assemble_into(&mut a_dense, &mut rhs_dense, &estimate, gmin);
            sparse.assemble_into(&mut a_sparse, &mut rhs_sparse, &estimate, gmin);
            assert_eq!(a_sparse.to_dense(), a_dense);
            assert_eq!(rhs_sparse, rhs_dense);
        }
    }

    #[test]
    fn sparse_backend_matches_dense_operating_point() {
        let nl = mixed_netlist();
        let ctx = StampContext { time: 0.0, step: None, gmin: 1e-9 };
        let x0 = vec![0.0; nl.unknown_count()];
        for strategy in [JacobianStrategy::Full, JacobianStrategy::CHORD_DEFAULT] {
            let opts = |backend| NewtonOptions { strategy, backend, ..NewtonOptions::default() };
            let dense = newton_solve(&nl, &x0, &ctx, &opts(SolverBackend::Dense)).unwrap();
            let sparse = newton_solve(&nl, &x0, &ctx, &opts(SolverBackend::Sparse)).unwrap();
            for (d, s) in dense.iter().zip(&sparse) {
                assert!((d - s).abs() < 1e-9, "dense {d} vs sparse {s} ({strategy:?})");
            }
        }
    }

    #[test]
    fn transient_step_sparse_matches_dense() {
        // Capacitor companion stamps flow through the sparse template
        // during a transient step.
        let nl = {
            let mut nl = Netlist::new();
            let vin = nl.node("in");
            let out = nl.node("out");
            nl.vsource("V1", vin, GROUND, 1.0);
            nl.resistor("R1", vin, out, 1e3);
            nl.capacitor("C1", out, GROUND, 1e-9);
            nl
        };
        let prev = vec![0.0; nl.unknown_count()];
        let ctx = StampContext { time: 1e-9, step: Some((1e-9, &prev)), gmin: 1e-12 };
        let dense = newton_solve(
            &nl,
            &prev,
            &ctx,
            &NewtonOptions::default().with_backend(SolverBackend::Dense),
        )
        .unwrap();
        let sparse = newton_solve(
            &nl,
            &prev,
            &ctx,
            &NewtonOptions::default().with_backend(SolverBackend::Sparse),
        )
        .unwrap();
        for (d, s) in dense.iter().zip(&sparse) {
            assert!((d - s).abs() < 1e-12, "dense {d} vs sparse {s}");
        }
    }

    #[test]
    fn floating_gate_does_not_singularize() {
        // A MOSFET whose gate is driven only through the gmin path.
        let mut nl = Netlist::new();
        let d = nl.node("d");
        let g = nl.node("g");
        nl.vsource("VD", d, GROUND, 0.9);
        nl.mosfet("M1", d, g, GROUND, crate::model::MosModel::nmos_28nm(), 1.0, 0.03);
        let ctx = StampContext { time: 0.0, step: None, gmin: 1e-9 };
        let x0 = vec![0.0; nl.unknown_count()];
        assert!(newton_solve(&nl, &x0, &ctx, &NewtonOptions::default()).is_ok());
    }
}
