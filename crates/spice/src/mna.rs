//! Modified nodal analysis: matrix/RHS assembly and Newton iteration.
//!
//! Unknowns are the non-ground node voltages followed by one branch current
//! per voltage source. Nonlinear devices (MOSFETs) are linearized around the
//! current solution estimate with companion stamps; capacitors contribute
//! backward-Euler companion conductances during transient steps and are open
//! in DC.

use crate::device::Device;
use crate::model::MosModel;
use crate::netlist::{Netlist, NodeId};
use crate::SpiceError;
use glova_linalg::{Lu, Matrix};

/// Assembly context: DC or one implicit transient step.
#[derive(Debug, Clone, Copy)]
pub struct StampContext<'a> {
    /// Simulation time for source waveform evaluation, seconds.
    pub time: f64,
    /// `Some((dt, previous_solution))` during a transient step.
    pub step: Option<(f64, &'a [f64])>,
    /// Conductance from every node to ground (convergence aid + floating
    /// node protection).
    pub gmin: f64,
}

/// Maps a node to its row/column in the MNA system (`None` for ground).
fn node_index(node: NodeId) -> Option<usize> {
    if node.is_ground() {
        None
    } else {
        Some(node.index() - 1)
    }
}

/// Adds `value` at `(row(a), col(b))` when both are non-ground.
fn stamp(matrix: &mut Matrix, a: Option<usize>, b: Option<usize>, value: f64) {
    if let (Some(i), Some(j)) = (a, b) {
        matrix[(i, j)] += value;
    }
}

/// Adds `value` into the RHS at `row(a)` when non-ground.
fn stamp_rhs(rhs: &mut [f64], a: Option<usize>, value: f64) {
    if let Some(i) = a {
        rhs[i] += value;
    }
}

/// One MOSFET's pre-resolved nonlinear stamp: node indices, polarity and
/// geometry ratio extracted once per Newton solve so the per-iteration
/// restamp touches no netlist structure.
#[derive(Debug, Clone, Copy)]
struct MosStamp {
    drain: Option<usize>,
    gate: Option<usize>,
    source: Option<usize>,
    model: MosModel,
    ratio: f64,
    /// Polarity factor: +1 NMOS, −1 PMOS (carrier-space transform).
    p: f64,
}

/// Cached MNA assembly for one `(netlist, context)` pair.
///
/// Everything except the MOSFETs is affine in the unknowns and constant
/// across Newton iterations — resistor/capacitor-companion conductances,
/// voltage-source incidence rows, source currents and the `gmin`
/// diagonal. The template stamps that constant part **once**; each
/// iteration then copies it ([`Matrix::copy_from`], a `memcpy`) and
/// restamps only the nonlinear devices, instead of re-walking the whole
/// netlist and re-zeroing the system.
#[derive(Debug, Clone)]
pub struct AssemblyTemplate {
    base: Matrix,
    base_rhs: Vec<f64>,
    mosfets: Vec<MosStamp>,
    n_nodes: usize,
}

impl AssemblyTemplate {
    /// Builds the template: stamps every constant device, extracts the
    /// nonlinear ones. The template bakes in `ctx.time` and `ctx.step`
    /// (source values, capacitor companions) but **not** `ctx.gmin` —
    /// the gmin diagonal is applied per [`assemble_into`](Self::assemble_into)
    /// call, so one template serves an entire gmin continuation ladder.
    pub fn new(netlist: &Netlist, ctx: &StampContext<'_>) -> Self {
        let n_nodes = netlist.node_count() - 1;
        let n = netlist.unknown_count();
        let mut a = Matrix::zeros(n, n);
        let mut rhs = vec![0.0; n];
        let mut mosfets = Vec::new();

        for device in netlist.devices() {
            match device {
                Device::Resistor { a: na, b: nb, ohms, .. } => {
                    let g = 1.0 / ohms;
                    let (ia, ib) = (node_index(*na), node_index(*nb));
                    stamp(&mut a, ia, ia, g);
                    stamp(&mut a, ib, ib, g);
                    stamp(&mut a, ia, ib, -g);
                    stamp(&mut a, ib, ia, -g);
                }
                Device::Capacitor { a: na, b: nb, farads, .. } => {
                    if let Some((dt, prev)) = ctx.step {
                        // Backward-Euler companion: geq ∥ ieq. `prev` is the
                        // previous *time step*, fixed across the iteration.
                        let geq = farads / dt;
                        let (ia, ib) = (node_index(*na), node_index(*nb));
                        let v_prev = |idx: Option<usize>| idx.map_or(0.0, |i| prev[i]);
                        let ieq = geq * (v_prev(ia) - v_prev(ib));
                        stamp(&mut a, ia, ia, geq);
                        stamp(&mut a, ib, ib, geq);
                        stamp(&mut a, ia, ib, -geq);
                        stamp(&mut a, ib, ia, -geq);
                        stamp_rhs(&mut rhs, ia, ieq);
                        stamp_rhs(&mut rhs, ib, -ieq);
                    }
                    // DC: capacitor is open — no stamp.
                }
                Device::Vsource { plus, minus, waveform, branch, .. } => {
                    let k = n_nodes + branch;
                    let (ip, im) = (node_index(*plus), node_index(*minus));
                    // Branch current enters the plus node.
                    stamp(&mut a, ip, Some(k), 1.0);
                    stamp(&mut a, im, Some(k), -1.0);
                    stamp(&mut a, Some(k), ip, 1.0);
                    stamp(&mut a, Some(k), im, -1.0);
                    rhs[k] = waveform.value_at(ctx.time);
                }
                Device::Isource { from, to, amps, .. } => {
                    stamp_rhs(&mut rhs, node_index(*to), *amps);
                    stamp_rhs(&mut rhs, node_index(*from), -*amps);
                }
                Device::Mosfet { drain, gate, source, model, w_um, l_um, .. } => {
                    let p = match model.polarity {
                        crate::model::MosPolarity::Nmos => 1.0,
                        crate::model::MosPolarity::Pmos => -1.0,
                    };
                    mosfets.push(MosStamp {
                        drain: node_index(*drain),
                        gate: node_index(*gate),
                        source: node_index(*source),
                        model: *model,
                        ratio: w_um / l_um,
                        p,
                    });
                }
            }
        }
        Self { base: a, base_rhs: rhs, mosfets, n_nodes }
    }

    /// System dimension.
    pub fn dim(&self) -> usize {
        self.base.rows()
    }

    /// Number of nonlinear devices restamped per iteration.
    pub fn nonlinear_count(&self) -> usize {
        self.mosfets.len()
    }

    /// Assembles the linearized system around estimate `x` into
    /// caller-provided storage: constant part copied, the gmin diagonal
    /// applied, MOSFETs restamped.
    ///
    /// # Panics
    ///
    /// Panics if `a`, `rhs` or `x` have the wrong dimensions.
    pub fn assemble_into(&self, a: &mut Matrix, rhs: &mut [f64], x: &[f64], gmin: f64) {
        a.copy_from(&self.base);
        rhs.copy_from_slice(&self.base_rhs);
        assert_eq!(x.len(), self.dim(), "solution estimate dimension mismatch");

        // Floating-node / convergence gmin.
        for i in 0..self.n_nodes {
            a[(i, i)] += gmin;
        }

        // Node voltage from the current estimate (ground = 0).
        let volt = |idx: Option<usize>| -> f64 { idx.map_or(0.0, |i| x[i]) };

        for mos in &self.mosfets {
            // Polarity factor: work in "carrier space" w = p·v so PMOS
            // reuses the NMOS equations; p² = 1 keeps the conductance
            // stamps sign-free while the equivalent current gets p.
            let p = mos.p;
            let wd = p * volt(mos.drain);
            let wg = p * volt(mos.gate);
            let ws = p * volt(mos.source);
            // The device is symmetric: the higher carrier-space terminal
            // acts as drain.
            let (idx_d, idx_s, wdd, wss) = if wd >= ws {
                (mos.drain, mos.source, wd, ws)
            } else {
                (mos.source, mos.drain, ws, wd)
            };
            let vgs_c = wg - wss;
            let vds_c = wdd - wss;
            let (id0, gm0, gds0) = mos.model.ids(vgs_c, vds_c);
            let (id, gm, gds) = (id0 * mos.ratio, gm0 * mos.ratio, gds0 * mos.ratio);
            let ieq = id - gm * vgs_c - gds * vds_c;

            let idx_g = mos.gate;
            stamp(a, idx_d, idx_g, gm);
            stamp(a, idx_d, idx_d, gds);
            stamp(a, idx_d, idx_s, -(gm + gds));
            stamp(a, idx_s, idx_g, -gm);
            stamp(a, idx_s, idx_d, -gds);
            stamp(a, idx_s, idx_s, gm + gds);
            stamp_rhs(rhs, idx_d, -p * ieq);
            stamp_rhs(rhs, idx_s, p * ieq);
        }
    }
}

/// Assembles the linearized MNA system around solution estimate `x`.
///
/// Returns `(matrix, rhs)` such that solving gives the *next* Newton
/// estimate directly (not a delta). One-shot convenience over
/// [`AssemblyTemplate`]; iteration loops should build the template once
/// and call [`AssemblyTemplate::assemble_into`].
pub fn assemble(netlist: &Netlist, x: &[f64], ctx: &StampContext<'_>) -> (Matrix, Vec<f64>) {
    let template = AssemblyTemplate::new(netlist, ctx);
    let n = template.dim();
    let mut a = Matrix::zeros(n, n);
    let mut rhs = vec![0.0; n];
    template.assemble_into(&mut a, &mut rhs, x, ctx.gmin);
    (a, rhs)
}

/// When the Newton loop re-factors the Jacobian.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JacobianStrategy {
    /// Textbook Newton: factor a fresh Jacobian every iteration.
    Full,
    /// Chord (frozen-Jacobian) iteration: reuse the last LU factorization
    /// while the update norm keeps contracting, re-factoring only on slow
    /// convergence. The residual is always evaluated against the *fresh*
    /// linearization, so the converged solution is the same fixed point
    /// as full Newton — only the path (and the per-iteration O(n³)
    /// factorization cost) changes.
    Chord {
        /// Max-delta (volts) above which the Jacobian is always refreshed
        /// — far from the solution the linearization changes too fast for
        /// a stale factorization to help.
        refactor_threshold: f64,
        /// Required shrink ratio of the update norm for a stale
        /// factorization to be kept another iteration; a chord step whose
        /// `max_delta > contraction × previous` triggers a refresh.
        contraction: f64,
    },
}

impl JacobianStrategy {
    /// The default chord parameters: reuse the factorization inside the
    /// 50 mV convergence basin, demand 2× contraction per step.
    pub const CHORD_DEFAULT: Self = Self::Chord { refactor_threshold: 0.05, contraction: 0.5 };
}

impl Default for JacobianStrategy {
    fn default() -> Self {
        Self::CHORD_DEFAULT
    }
}

/// Newton-iteration controls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonOptions {
    /// Maximum iterations before declaring non-convergence.
    pub max_iterations: usize,
    /// Convergence threshold on the max voltage update, volts.
    pub tolerance: f64,
    /// Per-iteration clamp on any voltage update, volts (damping).
    pub max_step: f64,
    /// Jacobian refresh policy (chord reuse by default).
    pub strategy: JacobianStrategy,
}

impl NewtonOptions {
    /// Options forcing a fresh factorization every iteration — the
    /// reference semantics the chord path is parity-tested against.
    pub fn full_newton() -> Self {
        Self { strategy: JacobianStrategy::Full, ..Self::default() }
    }
}

impl Default for NewtonOptions {
    fn default() -> Self {
        Self {
            max_iterations: 200,
            tolerance: 1e-9,
            max_step: 0.5,
            strategy: JacobianStrategy::default(),
        }
    }
}

/// Runs damped Newton iteration from `initial`, returning the solution.
///
/// # Errors
///
/// [`SpiceError::NonConvergent`] if the iteration stalls,
/// [`SpiceError::SingularMatrix`] if a linear solve fails.
pub fn newton_solve(
    netlist: &Netlist,
    initial: &[f64],
    ctx: &StampContext<'_>,
    options: &NewtonOptions,
) -> Result<Vec<f64>, SpiceError> {
    // The constant stamps are assembled once; per-iteration work is a
    // memcpy of the base system plus the nonlinear restamp.
    let template = AssemblyTemplate::new(netlist, ctx);
    newton_solve_with_template(&template, initial, ctx.gmin, options)
}

/// [`newton_solve`] over a prebuilt [`AssemblyTemplate`] — callers that
/// solve the same `(netlist, time, step)` system repeatedly (the DC
/// gmin continuation ladder) build the template once and sweep `gmin`
/// here instead of re-walking the netlist per rung.
///
/// # Errors
///
/// See [`newton_solve`].
///
/// # Panics
///
/// Panics if `initial.len()` differs from the template dimension.
pub fn newton_solve_with_template(
    template: &AssemblyTemplate,
    initial: &[f64],
    gmin: f64,
    options: &NewtonOptions,
) -> Result<Vec<f64>, SpiceError> {
    let n = template.dim();
    assert_eq!(initial.len(), n, "initial guess dimension mismatch");
    let n_nodes = template.n_nodes;
    let mut x = initial.to_vec();

    let mut a = Matrix::zeros(n, n);
    let mut rhs = vec![0.0; n];
    let mut residual = vec![0.0; n];
    let mut dx = Vec::with_capacity(n);
    let mut lu: Option<Lu> = None;
    // Whether `lu` was factored from an *earlier* iterate (chord state).
    let mut lu_is_stale = false;
    let mut refresh_next = false;
    let mut last_max_delta = f64::INFINITY;

    for _ in 0..options.max_iterations {
        template.assemble_into(&mut a, &mut rhs, &x, gmin);
        // residual = rhs − A·x; the Newton/chord step solves J·dx = residual.
        a.mat_vec_into(&x, &mut residual);
        for (r, b) in residual.iter_mut().zip(&rhs) {
            *r = b - *r;
        }

        let refresh = match options.strategy {
            JacobianStrategy::Full => true,
            JacobianStrategy::Chord { refactor_threshold, .. } => {
                lu.is_none() || refresh_next || last_max_delta > refactor_threshold
            }
        };
        if refresh {
            match &mut lu {
                Some(factor) => factor.refactor(&a).map_err(SpiceError::from)?,
                None => lu = Some(a.lu().map_err(SpiceError::from)?),
            }
            lu_is_stale = false;
        }
        lu.as_ref().expect("factorization present after refresh").solve_into(&residual, &mut dx);

        // Damped update with per-component clamp on node voltages.
        let mut max_delta = 0.0f64;
        for i in 0..n {
            let mut delta = dx[i];
            if i < n_nodes {
                delta = delta.clamp(-options.max_step, options.max_step);
            }
            x[i] += delta;
            if i < n_nodes {
                max_delta = max_delta.max(delta.abs());
            }
        }
        if max_delta < options.tolerance {
            return Ok(x);
        }
        // A stale-Jacobian step that failed to contract enough means the
        // chord iteration is stalling: refresh on the next pass.
        refresh_next = matches!(
            options.strategy,
            JacobianStrategy::Chord { contraction, .. }
                if lu_is_stale && max_delta > contraction * last_max_delta
        );
        lu_is_stale = true;
        last_max_delta = max_delta;
    }
    // Measure the final update magnitude as the reported residual.
    template.assemble_into(&mut a, &mut rhs, &x, gmin);
    a.mat_vec_into(&x, &mut residual);
    let residual = residual.iter().zip(&rhs).map(|(l, r)| (l - r).abs()).fold(0.0f64, f64::max);
    Err(SpiceError::NonConvergent { residual })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::GROUND;

    #[test]
    fn divider_assembles_and_solves_linearly() {
        let mut nl = Netlist::new();
        let vin = nl.node("in");
        let mid = nl.node("mid");
        nl.vsource("V1", vin, GROUND, 2.0);
        nl.resistor("R1", vin, mid, 1e3);
        nl.resistor("R2", mid, GROUND, 3e3);
        let ctx = StampContext { time: 0.0, step: None, gmin: 1e-12 };
        let x0 = vec![0.0; nl.unknown_count()];
        let x = newton_solve(&nl, &x0, &ctx, &NewtonOptions::default()).unwrap();
        assert!((x[vin.index() - 1] - 2.0).abs() < 1e-9);
        assert!((x[mid.index() - 1] - 1.5).abs() < 1e-6);
    }

    #[test]
    fn isource_into_resistor() {
        let mut nl = Netlist::new();
        let out = nl.node("out");
        nl.isource("I1", GROUND, out, 1e-3);
        nl.resistor("R1", out, GROUND, 2e3);
        let ctx = StampContext { time: 0.0, step: None, gmin: 1e-12 };
        let x = newton_solve(&nl, &[0.0], &ctx, &NewtonOptions::default()).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn vsource_branch_current_is_reported() {
        // 1 V across 1 kΩ: branch current = −1 mA (flows out of plus
        // terminal through the external circuit).
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V1", a, GROUND, 1.0);
        nl.resistor("R1", a, GROUND, 1e3);
        let ctx = StampContext { time: 0.0, step: None, gmin: 1e-12 };
        let x = newton_solve(&nl, &[0.0, 0.0], &ctx, &NewtonOptions::default()).unwrap();
        let n_nodes = nl.node_count() - 1;
        let branch = n_nodes + nl.vsource_branch("V1").unwrap();
        assert!((x[branch] + 1e-3).abs() < 1e-9, "branch current {}", x[branch]);
    }

    #[test]
    fn template_matches_direct_assembly() {
        // Mixed linear + nonlinear netlist: template restamp must agree
        // with a from-scratch assembly at several estimates.
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let vin = nl.node("vin");
        let out = nl.node("out");
        nl.vsource("VDD", vdd, GROUND, 0.9);
        nl.vsource("VIN", vin, GROUND, 0.45);
        nl.resistor("RL", vdd, out, 10e3);
        nl.mosfet("M1", out, vin, GROUND, crate::model::MosModel::nmos_28nm(), 2.0, 0.1);
        let ctx = StampContext { time: 0.0, step: None, gmin: 1e-9 };
        let template = AssemblyTemplate::new(&nl, &ctx);
        assert_eq!(template.nonlinear_count(), 1);
        let n = nl.unknown_count();
        for estimate in [vec![0.0; n], vec![0.3; n], vec![0.9; n]] {
            let (a_direct, rhs_direct) = assemble(&nl, &estimate, &ctx);
            let mut a = glova_linalg::Matrix::zeros(n, n);
            let mut rhs = vec![0.0; n];
            template.assemble_into(&mut a, &mut rhs, &estimate, ctx.gmin);
            assert_eq!(a, a_direct);
            assert_eq!(rhs, rhs_direct);
        }
    }

    #[test]
    fn chord_and_full_newton_agree() {
        // Strongly nonlinear CMOS inverter at mid-rail input: the chord
        // iteration must land on the same operating point as full Newton
        // to well within the Newton tolerance.
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let vin = nl.node("vin");
        let out = nl.node("out");
        nl.vsource("VDD", vdd, GROUND, 0.9);
        nl.vsource("VIN", vin, GROUND, 0.42);
        nl.mosfet("MP", out, vin, vdd, crate::model::MosModel::pmos_28nm(), 2.0, 0.05);
        nl.mosfet("MN", out, vin, GROUND, crate::model::MosModel::nmos_28nm(), 1.0, 0.05);
        let ctx = StampContext { time: 0.0, step: None, gmin: 1e-9 };
        let x0 = vec![0.0; nl.unknown_count()];
        let full = newton_solve(&nl, &x0, &ctx, &NewtonOptions::full_newton()).unwrap();
        let chord = newton_solve(&nl, &x0, &ctx, &NewtonOptions::default()).unwrap();
        for (c, f) in chord.iter().zip(&full) {
            assert!((c - f).abs() < 1e-9, "chord {c} vs full {f}");
        }
    }

    #[test]
    fn floating_gate_does_not_singularize() {
        // A MOSFET whose gate is driven only through the gmin path.
        let mut nl = Netlist::new();
        let d = nl.node("d");
        let g = nl.node("g");
        nl.vsource("VD", d, GROUND, 0.9);
        nl.mosfet("M1", d, g, GROUND, crate::model::MosModel::nmos_28nm(), 1.0, 0.03);
        let ctx = StampContext { time: 0.0, step: None, gmin: 1e-9 };
        let x0 = vec![0.0; nl.unknown_count()];
        assert!(newton_solve(&nl, &x0, &ctx, &NewtonOptions::default()).is_ok());
    }
}
