//! Modified nodal analysis: matrix/RHS assembly and Newton iteration.
//!
//! Unknowns are the non-ground node voltages followed by one branch current
//! per voltage source. Nonlinear devices (MOSFETs) are linearized around the
//! current solution estimate with companion stamps; capacitors contribute
//! backward-Euler companion conductances during transient steps and are open
//! in DC.

use crate::device::Device;
use crate::netlist::{Netlist, NodeId};
use crate::SpiceError;
use glova_linalg::Matrix;

/// Assembly context: DC or one implicit transient step.
#[derive(Debug, Clone, Copy)]
pub struct StampContext<'a> {
    /// Simulation time for source waveform evaluation, seconds.
    pub time: f64,
    /// `Some((dt, previous_solution))` during a transient step.
    pub step: Option<(f64, &'a [f64])>,
    /// Conductance from every node to ground (convergence aid + floating
    /// node protection).
    pub gmin: f64,
}

/// Maps a node to its row/column in the MNA system (`None` for ground).
fn node_index(node: NodeId) -> Option<usize> {
    if node.is_ground() {
        None
    } else {
        Some(node.index() - 1)
    }
}

/// Adds `value` at `(row(a), col(b))` when both are non-ground.
fn stamp(matrix: &mut Matrix, a: Option<usize>, b: Option<usize>, value: f64) {
    if let (Some(i), Some(j)) = (a, b) {
        matrix[(i, j)] += value;
    }
}

/// Adds `value` into the RHS at `row(a)` when non-ground.
fn stamp_rhs(rhs: &mut [f64], a: Option<usize>, value: f64) {
    if let Some(i) = a {
        rhs[i] += value;
    }
}

/// Assembles the linearized MNA system around solution estimate `x`.
///
/// Returns `(matrix, rhs)` such that solving gives the *next* Newton
/// estimate directly (not a delta).
pub fn assemble(netlist: &Netlist, x: &[f64], ctx: &StampContext<'_>) -> (Matrix, Vec<f64>) {
    let n_nodes = netlist.node_count() - 1;
    let n = netlist.unknown_count();
    let mut a = Matrix::zeros(n, n);
    let mut rhs = vec![0.0; n];

    // Node voltage from the current estimate (ground = 0).
    let volt = |node: NodeId| -> f64 {
        match node_index(node) {
            None => 0.0,
            Some(i) => x[i],
        }
    };

    // Floating-node / convergence gmin.
    for i in 0..n_nodes {
        a[(i, i)] += ctx.gmin;
    }

    for device in netlist.devices() {
        match device {
            Device::Resistor { a: na, b: nb, ohms, .. } => {
                let g = 1.0 / ohms;
                let (ia, ib) = (node_index(*na), node_index(*nb));
                stamp(&mut a, ia, ia, g);
                stamp(&mut a, ib, ib, g);
                stamp(&mut a, ia, ib, -g);
                stamp(&mut a, ib, ia, -g);
            }
            Device::Capacitor { a: na, b: nb, farads, .. } => {
                if let Some((dt, prev)) = ctx.step {
                    // Backward-Euler companion: geq ∥ ieq.
                    let geq = farads / dt;
                    let (ia, ib) = (node_index(*na), node_index(*nb));
                    let v_prev = |idx: Option<usize>| idx.map_or(0.0, |i| prev[i]);
                    let ieq = geq * (v_prev(ia) - v_prev(ib));
                    stamp(&mut a, ia, ia, geq);
                    stamp(&mut a, ib, ib, geq);
                    stamp(&mut a, ia, ib, -geq);
                    stamp(&mut a, ib, ia, -geq);
                    stamp_rhs(&mut rhs, ia, ieq);
                    stamp_rhs(&mut rhs, ib, -ieq);
                }
                // DC: capacitor is open — no stamp.
            }
            Device::Vsource { plus, minus, waveform, branch, .. } => {
                let k = n_nodes + branch;
                let (ip, im) = (node_index(*plus), node_index(*minus));
                // Branch current enters the plus node.
                stamp(&mut a, ip, Some(k), 1.0);
                stamp(&mut a, im, Some(k), -1.0);
                stamp(&mut a, Some(k), ip, 1.0);
                stamp(&mut a, Some(k), im, -1.0);
                rhs[k] = waveform.value_at(ctx.time);
            }
            Device::Isource { from, to, amps, .. } => {
                stamp_rhs(&mut rhs, node_index(*to), *amps);
                stamp_rhs(&mut rhs, node_index(*from), -*amps);
            }
            Device::Mosfet { drain, gate, source, model, w_um, l_um, .. } => {
                // Polarity factor: work in "carrier space" w = p·v so PMOS
                // reuses the NMOS equations; p² = 1 keeps the conductance
                // stamps sign-free while the equivalent current gets p.
                let p = match model.polarity {
                    crate::model::MosPolarity::Nmos => 1.0,
                    crate::model::MosPolarity::Pmos => -1.0,
                };
                let wd = p * volt(*drain);
                let wg = p * volt(*gate);
                let ws = p * volt(*source);
                // The device is symmetric: the higher carrier-space terminal
                // acts as drain.
                let (nd, ns, wdd, wss) =
                    if wd >= ws { (*drain, *source, wd, ws) } else { (*source, *drain, ws, wd) };
                let vgs_c = wg - wss;
                let vds_c = wdd - wss;
                let ratio = w_um / l_um;
                let (id0, gm0, gds0) = model.ids(vgs_c, vds_c);
                let (id, gm, gds) = (id0 * ratio, gm0 * ratio, gds0 * ratio);
                let ieq = id - gm * vgs_c - gds * vds_c;

                let (idx_d, idx_s, idx_g) = (node_index(nd), node_index(ns), node_index(*gate));
                stamp(&mut a, idx_d, idx_g, gm);
                stamp(&mut a, idx_d, idx_d, gds);
                stamp(&mut a, idx_d, idx_s, -(gm + gds));
                stamp(&mut a, idx_s, idx_g, -gm);
                stamp(&mut a, idx_s, idx_d, -gds);
                stamp(&mut a, idx_s, idx_s, gm + gds);
                stamp_rhs(&mut rhs, idx_d, -p * ieq);
                stamp_rhs(&mut rhs, idx_s, p * ieq);
            }
        }
    }
    (a, rhs)
}

/// Newton-iteration controls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonOptions {
    /// Maximum iterations before declaring non-convergence.
    pub max_iterations: usize,
    /// Convergence threshold on the max voltage update, volts.
    pub tolerance: f64,
    /// Per-iteration clamp on any voltage update, volts (damping).
    pub max_step: f64,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        Self { max_iterations: 200, tolerance: 1e-9, max_step: 0.5 }
    }
}

/// Runs damped Newton iteration from `initial`, returning the solution.
///
/// # Errors
///
/// [`SpiceError::NonConvergent`] if the iteration stalls,
/// [`SpiceError::SingularMatrix`] if a linear solve fails.
pub fn newton_solve(
    netlist: &Netlist,
    initial: &[f64],
    ctx: &StampContext<'_>,
    options: &NewtonOptions,
) -> Result<Vec<f64>, SpiceError> {
    let n = netlist.unknown_count();
    assert_eq!(initial.len(), n, "initial guess dimension mismatch");
    let n_nodes = netlist.node_count() - 1;
    let mut x = initial.to_vec();

    for _ in 0..options.max_iterations {
        let (a, rhs) = assemble(netlist, &x, ctx);
        let lu = a.lu().map_err(SpiceError::from)?;
        let x_new = lu.solve(&rhs);

        // Damped update with per-component clamp on node voltages.
        let mut max_delta = 0.0f64;
        for i in 0..n {
            let mut delta = x_new[i] - x[i];
            if i < n_nodes {
                delta = delta.clamp(-options.max_step, options.max_step);
            }
            x[i] += delta;
            if i < n_nodes {
                max_delta = max_delta.max(delta.abs());
            }
        }
        if max_delta < options.tolerance {
            return Ok(x);
        }
    }
    // Measure the final update magnitude as the reported residual.
    let (a, rhs) = assemble(netlist, &x, ctx);
    let residual = {
        let ax = a.mat_vec(&x);
        ax.iter().zip(&rhs).map(|(l, r)| (l - r).abs()).fold(0.0f64, f64::max)
    };
    Err(SpiceError::NonConvergent { residual })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::GROUND;

    #[test]
    fn divider_assembles_and_solves_linearly() {
        let mut nl = Netlist::new();
        let vin = nl.node("in");
        let mid = nl.node("mid");
        nl.vsource("V1", vin, GROUND, 2.0);
        nl.resistor("R1", vin, mid, 1e3);
        nl.resistor("R2", mid, GROUND, 3e3);
        let ctx = StampContext { time: 0.0, step: None, gmin: 1e-12 };
        let x0 = vec![0.0; nl.unknown_count()];
        let x = newton_solve(&nl, &x0, &ctx, &NewtonOptions::default()).unwrap();
        assert!((x[vin.index() - 1] - 2.0).abs() < 1e-9);
        assert!((x[mid.index() - 1] - 1.5).abs() < 1e-6);
    }

    #[test]
    fn isource_into_resistor() {
        let mut nl = Netlist::new();
        let out = nl.node("out");
        nl.isource("I1", GROUND, out, 1e-3);
        nl.resistor("R1", out, GROUND, 2e3);
        let ctx = StampContext { time: 0.0, step: None, gmin: 1e-12 };
        let x = newton_solve(&nl, &[0.0], &ctx, &NewtonOptions::default()).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn vsource_branch_current_is_reported() {
        // 1 V across 1 kΩ: branch current = −1 mA (flows out of plus
        // terminal through the external circuit).
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V1", a, GROUND, 1.0);
        nl.resistor("R1", a, GROUND, 1e3);
        let ctx = StampContext { time: 0.0, step: None, gmin: 1e-12 };
        let x = newton_solve(&nl, &[0.0, 0.0], &ctx, &NewtonOptions::default()).unwrap();
        let n_nodes = nl.node_count() - 1;
        let branch = n_nodes + nl.vsource_branch("V1").unwrap();
        assert!((x[branch] + 1e-3).abs() < 1e-9, "branch current {}", x[branch]);
    }

    #[test]
    fn floating_gate_does_not_singularize() {
        // A MOSFET whose gate is driven only through the gmin path.
        let mut nl = Netlist::new();
        let d = nl.node("d");
        let g = nl.node("g");
        nl.vsource("VD", d, GROUND, 0.9);
        nl.mosfet("M1", d, g, GROUND, crate::model::MosModel::nmos_28nm(), 1.0, 0.03);
        let ctx = StampContext { time: 0.0, step: None, gmin: 1e-9 };
        let x0 = vec![0.0; nl.unknown_count()];
        assert!(newton_solve(&nl, &x0, &ctx, &NewtonOptions::default()).is_ok());
    }
}
