//! Netlist representation.
//!
//! A [`Netlist`] is a flat list of device instances over named nodes.
//! Nodes are created through [`Netlist::node`]; ground is the pre-existing
//! node [`GROUND`].

use crate::device::Device;
use crate::model::MosModel;
use std::collections::HashMap;

/// Index of a circuit node. Node 0 is ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

/// The ground node (reference, 0 V).
pub const GROUND: NodeId = NodeId(0);

impl NodeId {
    /// Raw index (0 = ground).
    pub fn index(self) -> usize {
        self.0
    }

    /// Whether this is the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

/// Time-dependent source waveform.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceWaveform {
    /// Constant value.
    Dc(f64),
    /// Single pulse: `low` until `delay`, then `high` until `delay + width`
    /// (with linear `rise`/`fall` edges), then `low` again.
    Pulse {
        /// Level before/after the pulse.
        low: f64,
        /// Pulse level.
        high: f64,
        /// Pulse start time, s.
        delay: f64,
        /// Rise time, s.
        rise: f64,
        /// Fall time, s.
        fall: f64,
        /// Time spent at `high`, s.
        width: f64,
    },
}

impl SourceWaveform {
    /// Value of the waveform at time `t`.
    pub fn value_at(&self, t: f64) -> f64 {
        match *self {
            SourceWaveform::Dc(v) => v,
            SourceWaveform::Pulse { low, high, delay, rise, fall, width } => {
                if t < delay {
                    low
                } else if t < delay + rise {
                    low + (high - low) * (t - delay) / rise.max(1e-18)
                } else if t < delay + rise + width {
                    high
                } else if t < delay + rise + width + fall {
                    high - (high - low) * (t - delay - rise - width) / fall.max(1e-18)
                } else {
                    low
                }
            }
        }
    }
}

/// A circuit: nodes plus device instances.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    node_names: Vec<String>,
    name_to_node: HashMap<String, NodeId>,
    devices: Vec<Device>,
    vsource_count: usize,
}

impl Netlist {
    /// Creates an empty netlist (ground pre-registered).
    pub fn new() -> Self {
        let mut nl = Self {
            node_names: Vec::new(),
            name_to_node: HashMap::new(),
            devices: Vec::new(),
            vsource_count: 0,
        };
        nl.node_names.push("0".to_string());
        nl.name_to_node.insert("0".to_string(), GROUND);
        nl
    }

    /// Returns the node with the given name, creating it if needed.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.name_to_node.get(name) {
            return id;
        }
        let id = NodeId(self.node_names.len());
        self.node_names.push(name.to_string());
        self.name_to_node.insert(name.to_string(), id);
        id
    }

    /// Name of a node.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this netlist.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.0]
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of voltage sources (each adds one MNA branch unknown).
    pub fn vsource_count(&self) -> usize {
        self.vsource_count
    }

    /// The devices in insertion order.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Adds a resistor between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `ohms <= 0`.
    pub fn resistor(&mut self, name: &str, a: NodeId, b: NodeId, ohms: f64) -> &mut Self {
        assert!(ohms > 0.0, "resistance must be positive");
        self.devices.push(Device::Resistor { name: name.to_string(), a, b, ohms });
        self
    }

    /// Adds a capacitor between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `farads <= 0`.
    pub fn capacitor(&mut self, name: &str, a: NodeId, b: NodeId, farads: f64) -> &mut Self {
        assert!(farads > 0.0, "capacitance must be positive");
        self.devices.push(Device::Capacitor { name: name.to_string(), a, b, farads });
        self
    }

    /// Adds a DC voltage source: `v(plus) − v(minus) = volts`.
    pub fn vsource(&mut self, name: &str, plus: NodeId, minus: NodeId, volts: f64) -> &mut Self {
        self.vsource_waveform(name, plus, minus, SourceWaveform::Dc(volts))
    }

    /// Adds a voltage source with an arbitrary waveform.
    pub fn vsource_waveform(
        &mut self,
        name: &str,
        plus: NodeId,
        minus: NodeId,
        waveform: SourceWaveform,
    ) -> &mut Self {
        let branch = self.vsource_count;
        self.vsource_count += 1;
        self.devices.push(Device::Vsource {
            name: name.to_string(),
            plus,
            minus,
            waveform,
            branch,
        });
        self
    }

    /// Adds a DC current source pushing `amps` from `from` into `to`.
    pub fn isource(&mut self, name: &str, from: NodeId, to: NodeId, amps: f64) -> &mut Self {
        self.devices.push(Device::Isource { name: name.to_string(), from, to, amps });
        self
    }

    /// Adds a MOSFET. `w_um`/`l_um` in micrometers; the model card fixes
    /// polarity.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is non-positive.
    pub fn mosfet(
        &mut self,
        name: &str,
        drain: NodeId,
        gate: NodeId,
        source: NodeId,
        model: MosModel,
        w_um: f64,
        l_um: f64,
    ) -> &mut Self {
        assert!(w_um > 0.0 && l_um > 0.0, "MOSFET geometry must be positive");
        self.devices.push(Device::Mosfet {
            name: name.to_string(),
            drain,
            gate,
            source,
            model,
            w_um,
            l_um,
        });
        self
    }

    /// Index of the MNA branch unknown of voltage source `name`, if any.
    pub fn vsource_branch(&self, name: &str) -> Option<usize> {
        self.devices.iter().find_map(|d| match d {
            Device::Vsource { name: n, branch, .. } if n == name => Some(*branch),
            _ => None,
        })
    }

    /// Total number of MNA unknowns: non-ground nodes + V-source branches.
    pub fn unknown_count(&self) -> usize {
        (self.node_count() - 1) + self.vsource_count
    }
}

/// A CMOS inverter chain biased at mid-rail: `stages` nonlinear stages,
/// `2 + stages` non-ground nodes, `4 + stages` MNA unknowns.
///
/// The canonical solver-scaling workload: every stage adds one node,
/// two MOSFETs and a 10 kΩ output load, so sweeping `stages` sweeps the
/// MNA dimension while the per-node connectivity (and hence the sparse
/// nonzero count per row) stays constant. The load resistor keeps every
/// output conductively tied at all Newton iterates — a long *unloaded*
/// mid-rail chain drives the dense factorization into catastrophic
/// cancellation in the V-source border block during wild early iterates
/// (numerically singular from ~60 stages), which would leave the dense
/// reference unable to solve exactly the sizes the dense-vs-sparse
/// comparison needs. Stage `s` output is node `n{s}`.
pub fn inverter_chain(stages: usize) -> Netlist {
    inverter_chain_with_load(stages, Some(10e3))
}

/// [`inverter_chain`] with an explicit per-stage output load: `Some(ohms)`
/// ties every stage output to ground through a resistor, `None` leaves
/// the outputs **unloaded** — the dense-robustness stress case, where
/// cutoff devices leave node rows at `gmin` scale and the dense LU's
/// historical absolute singularity threshold misfired from ~60 stages
/// (the scaled threshold now covers it; see
/// `tests/spice_engine_parity.rs`).
///
/// # Panics
///
/// Panics if `load_ohms` is `Some` and non-positive.
pub fn inverter_chain_with_load(stages: usize, load_ohms: Option<f64>) -> Netlist {
    let mut nl = Netlist::new();
    let vdd = nl.node("vdd");
    let vin = nl.node("vin");
    nl.vsource("VDD", vdd, GROUND, 0.9);
    nl.vsource("VIN", vin, GROUND, 0.42);
    let mut prev = vin;
    for s in 0..stages {
        let out = nl.node(&format!("n{s}"));
        nl.mosfet(&format!("MP{s}"), out, prev, vdd, MosModel::pmos_28nm(), 2.0, 0.05);
        nl.mosfet(&format!("MN{s}"), out, prev, GROUND, MosModel::nmos_28nm(), 1.0, 0.05);
        if let Some(ohms) = load_ohms {
            nl.resistor(&format!("RL{s}"), out, GROUND, ohms);
        }
        prev = out;
    }
    nl
}

/// An RC ladder driven by a 1 V source: `sections` series resistors of
/// `r_ohms` with `c_farads` to ground at every intermediate node.
///
/// The MNA matrix is tridiagonal-plus-border — the best case for a
/// fill-minimizing sparse ordering (the factor stays `O(n)`) and the
/// worst case for dense `O(n³)` factorization. Section `s` node is
/// `l{s}`; the final node is also reachable as `out`.
///
/// # Panics
///
/// Panics if `sections == 0` or a component value is non-positive.
pub fn rc_ladder(sections: usize, r_ohms: f64, c_farads: f64) -> Netlist {
    assert!(sections > 0, "an RC ladder needs at least one section");
    let mut nl = Netlist::new();
    let vin = nl.node("vin");
    nl.vsource("VIN", vin, GROUND, 1.0);
    let mut prev = vin;
    for s in 0..sections {
        let name = if s + 1 == sections { "out".to_string() } else { format!("l{s}") };
        let node = nl.node(&name);
        nl.resistor(&format!("R{s}"), prev, node, r_ohms);
        nl.capacitor(&format!("C{s}"), node, GROUND, c_farads);
        prev = node;
    }
    nl
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_interning() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let a2 = nl.node("a");
        let b = nl.node("b");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(nl.node_count(), 3); // ground + a + b
        assert_eq!(nl.node_name(a), "a");
        assert!(GROUND.is_ground());
        assert!(!a.is_ground());
    }

    #[test]
    fn unknown_count_includes_branches() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vsource("V1", a, GROUND, 1.0);
        nl.resistor("R1", a, b, 100.0);
        assert_eq!(nl.unknown_count(), 3); // 2 nodes + 1 branch
        assert_eq!(nl.vsource_branch("V1"), Some(0));
        assert_eq!(nl.vsource_branch("nope"), None);
    }

    #[test]
    fn pulse_waveform_shape() {
        let w = SourceWaveform::Pulse {
            low: 0.0,
            high: 1.0,
            delay: 1e-9,
            rise: 1e-10,
            fall: 1e-10,
            width: 2e-9,
        };
        assert_eq!(w.value_at(0.0), 0.0);
        assert!((w.value_at(1.05e-9) - 0.5).abs() < 1e-9); // mid-rise
        assert_eq!(w.value_at(2e-9), 1.0);
        assert_eq!(w.value_at(5e-9), 0.0);
    }

    #[test]
    #[should_panic(expected = "resistance must be positive")]
    fn negative_resistor_panics() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.resistor("R", a, GROUND, -5.0);
    }

    #[test]
    fn inverter_chain_scales_linearly() {
        for stages in [1, 4, 64] {
            let nl = inverter_chain(stages);
            assert_eq!(nl.node_count(), 3 + stages, "{stages} stages");
            assert_eq!(nl.unknown_count(), 4 + stages);
            assert_eq!(
                nl.devices().len(),
                2 + 3 * stages,
                "two sources plus a P/N pair and a load per stage"
            );
        }
    }

    #[test]
    fn rc_ladder_shape() {
        let nl = rc_ladder(8, 1e3, 1e-12);
        assert_eq!(nl.node_count(), 10); // ground + vin + 8 ladder nodes
        assert_eq!(nl.unknown_count(), 10); // 9 nodes + 1 branch
        assert_eq!(nl.devices().len(), 17); // VIN + 8 R + 8 C
                                            // Looking up "out" must intern to an *existing* node (the final
                                            // ladder node), not create a fresh floating one.
        let mut check = rc_ladder(8, 1e3, 1e-12);
        let nodes_before = check.node_count();
        let out = check.node("out");
        assert_eq!(check.node_count(), nodes_before, "out already existed");
        assert_eq!(out.index(), nodes_before - 1, "out is the last ladder node");
    }

    #[test]
    #[should_panic(expected = "at least one section")]
    fn empty_rc_ladder_panics() {
        rc_ladder(0, 1e3, 1e-12);
    }
}
