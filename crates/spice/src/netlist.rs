//! Netlist representation.
//!
//! A [`Netlist`] is a flat list of device instances over named nodes.
//! Nodes are created through [`Netlist::node`]; ground is the pre-existing
//! node [`GROUND`].

use crate::device::Device;
use crate::model::MosModel;
use std::collections::HashMap;

/// Index of a circuit node. Node 0 is ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

/// The ground node (reference, 0 V).
pub const GROUND: NodeId = NodeId(0);

impl NodeId {
    /// Raw index (0 = ground).
    pub fn index(self) -> usize {
        self.0
    }

    /// Whether this is the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

/// Time-dependent source waveform.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceWaveform {
    /// Constant value.
    Dc(f64),
    /// Single pulse: `low` until `delay`, then `high` until `delay + width`
    /// (with linear `rise`/`fall` edges), then `low` again.
    Pulse {
        /// Level before/after the pulse.
        low: f64,
        /// Pulse level.
        high: f64,
        /// Pulse start time, s.
        delay: f64,
        /// Rise time, s.
        rise: f64,
        /// Fall time, s.
        fall: f64,
        /// Time spent at `high`, s.
        width: f64,
    },
}

impl SourceWaveform {
    /// Value of the waveform at time `t`.
    pub fn value_at(&self, t: f64) -> f64 {
        match *self {
            SourceWaveform::Dc(v) => v,
            SourceWaveform::Pulse { low, high, delay, rise, fall, width } => {
                if t < delay {
                    low
                } else if t < delay + rise {
                    low + (high - low) * (t - delay) / rise.max(1e-18)
                } else if t < delay + rise + width {
                    high
                } else if t < delay + rise + width + fall {
                    high - (high - low) * (t - delay - rise - width) / fall.max(1e-18)
                } else {
                    low
                }
            }
        }
    }
}

/// A circuit: nodes plus device instances.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    node_names: Vec<String>,
    name_to_node: HashMap<String, NodeId>,
    devices: Vec<Device>,
    vsource_count: usize,
}

impl Netlist {
    /// Creates an empty netlist (ground pre-registered).
    pub fn new() -> Self {
        let mut nl = Self {
            node_names: Vec::new(),
            name_to_node: HashMap::new(),
            devices: Vec::new(),
            vsource_count: 0,
        };
        nl.node_names.push("0".to_string());
        nl.name_to_node.insert("0".to_string(), GROUND);
        nl
    }

    /// Returns the node with the given name, creating it if needed.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.name_to_node.get(name) {
            return id;
        }
        let id = NodeId(self.node_names.len());
        self.node_names.push(name.to_string());
        self.name_to_node.insert(name.to_string(), id);
        id
    }

    /// Name of a node.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this netlist.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.0]
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of voltage sources (each adds one MNA branch unknown).
    pub fn vsource_count(&self) -> usize {
        self.vsource_count
    }

    /// The devices in insertion order.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Adds a resistor between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `ohms <= 0`.
    pub fn resistor(&mut self, name: &str, a: NodeId, b: NodeId, ohms: f64) -> &mut Self {
        assert!(ohms > 0.0, "resistance must be positive");
        self.devices.push(Device::Resistor { name: name.to_string(), a, b, ohms });
        self
    }

    /// Adds a capacitor between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `farads <= 0`.
    pub fn capacitor(&mut self, name: &str, a: NodeId, b: NodeId, farads: f64) -> &mut Self {
        assert!(farads > 0.0, "capacitance must be positive");
        self.devices.push(Device::Capacitor { name: name.to_string(), a, b, farads });
        self
    }

    /// Adds a DC voltage source: `v(plus) − v(minus) = volts`.
    pub fn vsource(&mut self, name: &str, plus: NodeId, minus: NodeId, volts: f64) -> &mut Self {
        self.vsource_waveform(name, plus, minus, SourceWaveform::Dc(volts))
    }

    /// Adds a voltage source with an arbitrary waveform.
    pub fn vsource_waveform(
        &mut self,
        name: &str,
        plus: NodeId,
        minus: NodeId,
        waveform: SourceWaveform,
    ) -> &mut Self {
        let branch = self.vsource_count;
        self.vsource_count += 1;
        self.devices.push(Device::Vsource {
            name: name.to_string(),
            plus,
            minus,
            waveform,
            branch,
        });
        self
    }

    /// Adds a DC current source pushing `amps` from `from` into `to`.
    pub fn isource(&mut self, name: &str, from: NodeId, to: NodeId, amps: f64) -> &mut Self {
        self.devices.push(Device::Isource { name: name.to_string(), from, to, amps });
        self
    }

    /// Adds a MOSFET. `w_um`/`l_um` in micrometers; the model card fixes
    /// polarity.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is non-positive.
    pub fn mosfet(
        &mut self,
        name: &str,
        drain: NodeId,
        gate: NodeId,
        source: NodeId,
        model: MosModel,
        w_um: f64,
        l_um: f64,
    ) -> &mut Self {
        assert!(w_um > 0.0 && l_um > 0.0, "MOSFET geometry must be positive");
        self.devices.push(Device::Mosfet {
            name: name.to_string(),
            drain,
            gate,
            source,
            model,
            w_um,
            l_um,
        });
        self
    }

    /// Index of the MNA branch unknown of voltage source `name`, if any.
    pub fn vsource_branch(&self, name: &str) -> Option<usize> {
        self.devices.iter().find_map(|d| match d {
            Device::Vsource { name: n, branch, .. } if n == name => Some(*branch),
            _ => None,
        })
    }

    /// Total number of MNA unknowns: non-ground nodes + V-source branches.
    pub fn unknown_count(&self) -> usize {
        (self.node_count() - 1) + self.vsource_count
    }

    /// A 64-bit fingerprint of the netlist **topology**: node and
    /// voltage-source counts plus, per device in insertion order, the
    /// device kind and its node/branch connectivity. Device *values*
    /// (resistances, source levels, waveform parameters, MOSFET model
    /// cards and geometry) and names are deliberately excluded — two
    /// netlists with equal fingerprints assemble MNA systems with
    /// identical sparsity patterns and stamp ordering, which is the
    /// precondition for the value-only retarget fast path
    /// (`glova_spice::mna` assembly templates key on this).
    pub fn topology_fingerprint(&self) -> u64 {
        // FNV-1a over the structural words; collisions are negligible at
        // 64 bits and the consumers additionally check dimensions. The
        // process-wide solver registry (`glova_spice::registry`) cannot
        // tolerate even a negligible collision silently reusing a wrong
        // symbolic analysis, so it confirms hits against the full
        // [`structural_signature`](Self::structural_signature) word
        // sequence this digest is computed from.
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        for w in self.structural_signature() {
            for byte in w.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        }
        h
    }

    /// The exact structural word sequence [`Self::topology_fingerprint`]
    /// digests: counts, then per device (in insertion order) a kind tag
    /// and the node/branch connectivity. Two netlists are
    /// topology-equivalent — identical MNA sparsity pattern and stamp
    /// order — **iff** their signatures are equal, which makes this the
    /// collision-proof confirm behind fingerprint-keyed registries.
    pub fn structural_signature(&self) -> Vec<u64> {
        let mut words = Vec::with_capacity(3 + 4 * self.devices.len());
        words.push(self.node_count() as u64);
        words.push(self.vsource_count as u64);
        words.push(self.devices.len() as u64);
        for device in &self.devices {
            match device {
                Device::Resistor { a, b, .. } => {
                    words.extend([1, a.0 as u64, b.0 as u64]);
                }
                Device::Capacitor { a, b, .. } => {
                    words.extend([2, a.0 as u64, b.0 as u64]);
                }
                Device::Vsource { plus, minus, branch, .. } => {
                    words.extend([3, plus.0 as u64, minus.0 as u64, *branch as u64]);
                }
                Device::Isource { from, to, .. } => {
                    words.extend([4, from.0 as u64, to.0 as u64]);
                }
                Device::Mosfet { drain, gate, source, .. } => {
                    words.extend([5, drain.0 as u64, gate.0 as u64, source.0 as u64]);
                }
            }
        }
        words
    }
}

/// A CMOS inverter chain biased at mid-rail: `stages` nonlinear stages,
/// `2 + stages` non-ground nodes, `4 + stages` MNA unknowns.
///
/// The canonical solver-scaling workload: every stage adds one node,
/// two MOSFETs and a 10 kΩ output load, so sweeping `stages` sweeps the
/// MNA dimension while the per-node connectivity (and hence the sparse
/// nonzero count per row) stays constant. The load resistor keeps every
/// output conductively tied at all Newton iterates — a long *unloaded*
/// mid-rail chain drives the dense factorization into catastrophic
/// cancellation in the V-source border block during wild early iterates
/// (numerically singular from ~60 stages), which would leave the dense
/// reference unable to solve exactly the sizes the dense-vs-sparse
/// comparison needs. Stage `s` output is node `n{s}`.
pub fn inverter_chain(stages: usize) -> Netlist {
    inverter_chain_with_load(stages, Some(10e3))
}

/// [`inverter_chain`] with an explicit per-stage output load: `Some(ohms)`
/// ties every stage output to ground through a resistor, `None` leaves
/// the outputs **unloaded** — the dense-robustness stress case, where
/// cutoff devices leave node rows at `gmin` scale and the dense LU's
/// historical absolute singularity threshold misfired from ~60 stages
/// (the scaled threshold now covers it; see
/// `tests/spice_engine_parity.rs`).
///
/// # Panics
///
/// Panics if `load_ohms` is `Some` and non-positive.
pub fn inverter_chain_with_load(stages: usize, load_ohms: Option<f64>) -> Netlist {
    let mut nl = Netlist::new();
    let vdd = nl.node("vdd");
    let vin = nl.node("vin");
    nl.vsource("VDD", vdd, GROUND, 0.9);
    nl.vsource("VIN", vin, GROUND, 0.42);
    let mut prev = vin;
    for s in 0..stages {
        let out = nl.node(&format!("n{s}"));
        nl.mosfet(&format!("MP{s}"), out, prev, vdd, MosModel::pmos_28nm(), 2.0, 0.05);
        nl.mosfet(&format!("MN{s}"), out, prev, GROUND, MosModel::nmos_28nm(), 1.0, 0.05);
        if let Some(ohms) = load_ohms {
            nl.resistor(&format!("RL{s}"), out, GROUND, ohms);
        }
        prev = out;
    }
    nl
}

/// Element values for the [`ota_two_stage`] generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OtaParams {
    /// Input-pair (M1/M2, NMOS) width, µm.
    pub w_in_um: f64,
    /// Mirror-load (M3/M4, PMOS) width, µm.
    pub w_mir_um: f64,
    /// Second-stage (M6, PMOS) width, µm.
    pub w_out_um: f64,
    /// Shared channel length, µm.
    pub l_um: f64,
    /// Tail bias current, µA.
    pub itail_ua: f64,
    /// Second-stage load resistance, kΩ.
    pub rl_kohm: f64,
    /// Miller compensation capacitance, fF.
    pub cc_ff: f64,
    /// Output load capacitance, fF.
    pub cl_ff: f64,
    /// Supply voltage, V.
    pub vdd: f64,
    /// Input common-mode voltage, V.
    pub vcm: f64,
}

impl OtaParams {
    /// A mid-range sizing that biases every device in saturation at the
    /// nominal 28 nm cards: ~62 dB DC gain from `vinp` to `out`.
    pub fn nominal() -> Self {
        Self {
            w_in_um: 2.0,
            w_mir_um: 1.5,
            w_out_um: 6.0,
            l_um: 0.1,
            itail_ua: 20.0,
            rl_kohm: 11.0,
            cc_ff: 200.0,
            cl_ff: 500.0,
            vdd: 0.9,
            vcm: 0.55,
        }
    }
}

/// Per-device model cards for [`ota_two_stage_with_cards`] — the hook
/// through which corner- and mismatch-specialized cards enter without the
/// generator knowing about the variation layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OtaCards {
    /// Input pair, inverting side (M1, NMOS).
    pub m1: MosModel,
    /// Input pair, non-inverting side (M2, NMOS).
    pub m2: MosModel,
    /// Mirror diode (M3, PMOS).
    pub m3: MosModel,
    /// Mirror output (M4, PMOS).
    pub m4: MosModel,
    /// Second stage (M6, PMOS).
    pub m6: MosModel,
}

impl OtaCards {
    /// The nominal 28 nm cards (TT, 27 °C, no mismatch).
    pub fn nominal() -> Self {
        Self {
            m1: MosModel::nmos_28nm(),
            m2: MosModel::nmos_28nm(),
            m3: MosModel::pmos_28nm(),
            m4: MosModel::pmos_28nm(),
            m6: MosModel::pmos_28nm(),
        }
    }
}

/// A two-stage Miller OTA: NMOS input pair (`M1`/`M2`) under a PMOS
/// current-mirror load (`M3` diode / `M4`), current-source tail, and a
/// PMOS common-source second stage (`M6`) with a resistive load plus
/// Miller (`CC`) and output (`CL`) capacitors.
///
/// The first multi-stage amplifier testcase exercising the full solver
/// stack: the DC operating point carries five nonlinear devices across
/// two gain stages, and the AC small-signal system sees both the Miller
/// pole split and the resistive output pole. Nodes: `vdd`, `vinp`
/// (non-inverting input — the AC excitation source is `VINP`), `vinn`,
/// `tail`, `mir` (mirror gate), `o1` (first-stage output), `out`. The
/// second-stage load resistor pins the output operating point, so the DC
/// solve stays robust across corner/mismatch perturbations (a pure
/// current-source load would slam the output to a rail under a few
/// percent of systematic current imbalance at these `λ`).
///
/// The topology — and therefore the MNA pattern and the value-only
/// retarget fast path — is independent of every [`OtaParams`] /
/// [`OtaCards`] value.
///
/// # Panics
///
/// Panics if any width, length, resistance or capacitance is
/// non-positive.
pub fn ota_two_stage(p: &OtaParams) -> Netlist {
    ota_two_stage_with_cards(p, &OtaCards::nominal())
}

/// [`ota_two_stage`] with explicit per-device model cards (corner- and
/// mismatch-specialized by the caller).
///
/// # Panics
///
/// See [`ota_two_stage`].
pub fn ota_two_stage_with_cards(p: &OtaParams, cards: &OtaCards) -> Netlist {
    let mut nl = Netlist::new();
    let vdd = nl.node("vdd");
    let vinp = nl.node("vinp");
    let vinn = nl.node("vinn");
    let tail = nl.node("tail");
    let mir = nl.node("mir");
    let o1 = nl.node("o1");
    let out = nl.node("out");
    nl.vsource("VDD", vdd, GROUND, p.vdd);
    nl.vsource("VINP", vinp, GROUND, p.vcm);
    nl.vsource("VINN", vinn, GROUND, p.vcm);
    // First stage: diff pair into the mirror; the non-inverting input
    // (vinp) drives M1 on the diode side so the signal to `out` goes
    // through two inversions.
    nl.mosfet("M1", mir, vinp, tail, cards.m1, p.w_in_um, p.l_um);
    nl.mosfet("M2", o1, vinn, tail, cards.m2, p.w_in_um, p.l_um);
    nl.mosfet("M3", mir, mir, vdd, cards.m3, p.w_mir_um, p.l_um);
    nl.mosfet("M4", o1, mir, vdd, cards.m4, p.w_mir_um, p.l_um);
    nl.isource("ITAIL", tail, GROUND, p.itail_ua * 1e-6);
    // Second stage: PMOS common source with a resistive load, Miller
    // compensation across it, capacitive load at the output.
    nl.mosfet("M6", out, o1, vdd, cards.m6, p.w_out_um, p.l_um);
    nl.resistor("RL", out, GROUND, p.rl_kohm * 1e3);
    nl.capacitor("CC", o1, out, p.cc_ff * 1e-15);
    nl.capacitor("CL", out, GROUND, p.cl_ff * 1e-15);
    nl
}

/// An RC ladder driven by a 1 V source: `sections` series resistors of
/// `r_ohms` with `c_farads` to ground at every intermediate node.
///
/// The MNA matrix is tridiagonal-plus-border — the best case for a
/// fill-minimizing sparse ordering (the factor stays `O(n)`) and the
/// worst case for dense `O(n³)` factorization. Section `s` node is
/// `l{s}`; the final node is also reachable as `out`.
///
/// # Panics
///
/// Panics if `sections == 0` or a component value is non-positive.
pub fn rc_ladder(sections: usize, r_ohms: f64, c_farads: f64) -> Netlist {
    assert!(sections > 0, "an RC ladder needs at least one section");
    let mut nl = Netlist::new();
    let vin = nl.node("vin");
    nl.vsource("VIN", vin, GROUND, 1.0);
    let mut prev = vin;
    for s in 0..sections {
        let name = if s + 1 == sections { "out".to_string() } else { format!("l{s}") };
        let node = nl.node(&name);
        nl.resistor(&format!("R{s}"), prev, node, r_ohms);
        nl.capacitor(&format!("C{s}"), node, GROUND, c_farads);
        prev = node;
    }
    nl
}

/// Device values for [`sense_amp_array`] — see
/// [`sense_amp_array_with`] for the topology the values land on.
///
/// The capacitances default to the constants of the analytic
/// `glova_circuits` DRAM testcase (10 fF cell, 85 fF bitline) so the
/// netlist's charge-sharing signal cross-checks against its closed-form
/// `v_sig = vdd/2 · C_cell / (C_cell + C_bl)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SenseAmpParams {
    /// Supply voltage, volts (the precharge rail sits at `vdd / 2`).
    pub vdd: f64,
    /// Wordline driver resistance, ohms (vdd → each wordline).
    pub r_wordline: f64,
    /// Precharge resistance, ohms (vdd/2 rail → each bitline half).
    pub r_precharge: f64,
    /// Cell leakage/anchor resistance, ohms (each cell node → ground).
    pub r_cell: f64,
    /// Latch transistor width, µm (all four cross-coupled devices).
    pub w_latch_um: f64,
    /// Access transistor width, µm.
    pub w_access_um: f64,
    /// Channel length, µm (all devices).
    pub l_um: f64,
    /// Storage-cell capacitance, farads (cell node → ground; DC-open).
    pub c_cell_f: f64,
    /// Bitline capacitance, farads (each bitline half → ground; DC-open).
    pub c_bitline_f: f64,
}

impl Default for SenseAmpParams {
    fn default() -> Self {
        Self {
            vdd: 0.9,
            r_wordline: 1e3,
            r_precharge: 2e3,
            r_cell: 100e3,
            w_latch_um: 0.5,
            w_access_um: 2.0,
            l_um: 0.1,
            c_cell_f: 10e-15,
            c_bitline_f: 85e-15,
        }
    }
}

/// [`sense_amp_array_with`] under the default [`SenseAmpParams`].
pub fn sense_amp_array(rows: usize, cols: usize) -> Netlist {
    sense_amp_array_with(rows, cols, &SenseAmpParams::default())
}

/// A `rows × cols` DRAM sense-amplifier array — the repo's genuinely
/// **2-D** MNA coupling pattern (every other generator is a chain or a
/// ladder, i.e. 1-D).
///
/// Topology per the classic open-bitline organization:
///
/// - `vdd` and a `vpre = vdd/2` precharge rail (one V-source branch
///   each);
/// - one wordline node `wl{r}` per row, anchored to `vdd` through
///   `r_wordline` (gates draw no DC current, so the wordline sits at
///   `vdd` — every access device is on);
/// - one bitline pair `bl{c}` / `blb{c}` per column, each half precharged
///   to `vpre` through `r_precharge` and loaded by `c_bitline_f`, with a
///   cross-coupled CMOS latch (two NMOS to ground, two PMOS to `vdd`)
///   regenerating the differential signal;
/// - one storage cell per `(r, c)`: an access NMOS from `bl{c}` gated by
///   `wl{r}` into cell node `cell{r}_{c}`, which carries `c_cell_f` and a
///   `r_cell` leakage anchor to ground.
///
/// Cell `(r, c)` therefore couples row node `wl{r}` and column node
/// `bl{c}` in the Jacobian (drain rows pick up gate-column `gm` entries),
/// giving the grid-like fill structure that separates fill-reducing
/// orderings from greedy ones. Unknowns: `rows·cols + rows + 2·cols + 4`
/// (cells + wordlines + bitline pairs + two rails + two branches).
///
/// The DC operating point is well-defined for every size: each node has
/// a resistive path to a rail, and the `gmin` ladder handles the latch
/// bistability. The organization is open-bitline — cells load only the
/// true half of each pair — so the DC solution carries a genuine
/// pre-sensing differential (`bl` below its `blb` reference).
///
/// # Panics
///
/// Panics if `rows == 0` or `cols == 0`.
pub fn sense_amp_array_with(rows: usize, cols: usize, p: &SenseAmpParams) -> Netlist {
    assert!(rows > 0 && cols > 0, "a sense-amp array needs at least one row and column");
    let mut nl = Netlist::new();
    let vdd = nl.node("vdd");
    let vpre = nl.node("vpre");
    nl.vsource("VDD", vdd, GROUND, p.vdd);
    nl.vsource("VPRE", vpre, GROUND, p.vdd / 2.0);
    let nmos = MosModel::nmos_28nm();
    let pmos = MosModel::pmos_28nm();

    let wordlines: Vec<NodeId> = (0..rows)
        .map(|r| {
            let wl = nl.node(&format!("wl{r}"));
            nl.resistor(&format!("RWL{r}"), vdd, wl, p.r_wordline);
            wl
        })
        .collect();

    let bitlines: Vec<NodeId> = (0..cols)
        .map(|c| {
            let bl = nl.node(&format!("bl{c}"));
            let blb = nl.node(&format!("blb{c}"));
            nl.resistor(&format!("RPB{c}"), vpre, bl, p.r_precharge);
            nl.resistor(&format!("RPBB{c}"), vpre, blb, p.r_precharge);
            nl.capacitor(&format!("CBL{c}"), bl, GROUND, p.c_bitline_f);
            nl.capacitor(&format!("CBLB{c}"), blb, GROUND, p.c_bitline_f);
            // Cross-coupled sense-amp latch on the pair.
            nl.mosfet(&format!("MN1_{c}"), bl, blb, GROUND, nmos, p.w_latch_um, p.l_um);
            nl.mosfet(&format!("MN2_{c}"), blb, bl, GROUND, nmos, p.w_latch_um, p.l_um);
            nl.mosfet(&format!("MP1_{c}"), bl, blb, vdd, pmos, p.w_latch_um, p.l_um);
            nl.mosfet(&format!("MP2_{c}"), blb, bl, vdd, pmos, p.w_latch_um, p.l_um);
            bl
        })
        .collect();

    for (r, &wl) in wordlines.iter().enumerate() {
        for (c, &bl) in bitlines.iter().enumerate() {
            let cell = nl.node(&format!("cell{r}_{c}"));
            nl.mosfet(&format!("MA{r}_{c}"), bl, wl, cell, nmos, p.w_access_um, p.l_um);
            nl.capacitor(&format!("CC{r}_{c}"), cell, GROUND, p.c_cell_f);
            nl.resistor(&format!("RC{r}_{c}"), cell, GROUND, p.r_cell);
        }
    }
    nl
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sense_amp_array_counts_and_fingerprint() {
        let nl = sense_amp_array(3, 4);
        // cells + wordlines + bitline pairs + two rails + two branches.
        assert_eq!(nl.unknown_count(), 3 * 4 + 3 + 2 * 4 + 4);
        assert_eq!(nl.vsource_count(), 2);
        // Same shape ⇒ same topology fingerprint even under different
        // device values (the value-only retarget precondition); a
        // different shape must differ.
        let resized = SenseAmpParams { r_precharge: 3e3, ..SenseAmpParams::default() };
        assert_eq!(
            nl.topology_fingerprint(),
            sense_amp_array_with(3, 4, &resized).topology_fingerprint()
        );
        assert_ne!(nl.topology_fingerprint(), sense_amp_array(4, 3).topology_fingerprint());
    }

    #[test]
    fn sense_amp_array_operating_point_is_sane() {
        let p = SenseAmpParams::default();
        let mut nl = sense_amp_array(3, 3);
        let op = crate::dc::operating_point(&nl).unwrap();
        // Wordlines carry no DC gate current: exactly vdd.
        let wl = nl.node("wl1");
        assert!((op.voltage(wl) - p.vdd).abs() < 1e-6, "wordline at {}", op.voltage(wl));
        // Open-bitline asymmetry: the cells load only the true half, so
        // `bl` is pulled below its reference `blb` — the pre-sensing
        // differential the latch amplifies.
        let bl = nl.node("bl1");
        let blb = nl.node("blb1");
        assert!(
            op.voltage(bl) < op.voltage(blb),
            "cell-loaded half below reference: {} vs {}",
            op.voltage(bl),
            op.voltage(blb)
        );
        assert!(op.voltage(bl) < p.vdd / 2.0, "bitline below precharge: {}", op.voltage(bl));
        assert!(op.voltage(bl) > 0.0, "bitline above ground: {}", op.voltage(bl));
        assert!(op.voltage(blb) < p.vdd, "reference below vdd: {}", op.voltage(blb));
        // Cells leak to ground through the anchor, so they sit between
        // ground and the bitline.
        let cell = nl.node("cell1_1");
        assert!(op.voltage(cell) > 0.0 && op.voltage(cell) < op.voltage(bl));
    }

    #[test]
    fn node_interning() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let a2 = nl.node("a");
        let b = nl.node("b");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(nl.node_count(), 3); // ground + a + b
        assert_eq!(nl.node_name(a), "a");
        assert!(GROUND.is_ground());
        assert!(!a.is_ground());
    }

    #[test]
    fn unknown_count_includes_branches() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vsource("V1", a, GROUND, 1.0);
        nl.resistor("R1", a, b, 100.0);
        assert_eq!(nl.unknown_count(), 3); // 2 nodes + 1 branch
        assert_eq!(nl.vsource_branch("V1"), Some(0));
        assert_eq!(nl.vsource_branch("nope"), None);
    }

    #[test]
    fn pulse_waveform_shape() {
        let w = SourceWaveform::Pulse {
            low: 0.0,
            high: 1.0,
            delay: 1e-9,
            rise: 1e-10,
            fall: 1e-10,
            width: 2e-9,
        };
        assert_eq!(w.value_at(0.0), 0.0);
        assert!((w.value_at(1.05e-9) - 0.5).abs() < 1e-9); // mid-rise
        assert_eq!(w.value_at(2e-9), 1.0);
        assert_eq!(w.value_at(5e-9), 0.0);
    }

    #[test]
    #[should_panic(expected = "resistance must be positive")]
    fn negative_resistor_panics() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.resistor("R", a, GROUND, -5.0);
    }

    #[test]
    fn inverter_chain_scales_linearly() {
        for stages in [1, 4, 64] {
            let nl = inverter_chain(stages);
            assert_eq!(nl.node_count(), 3 + stages, "{stages} stages");
            assert_eq!(nl.unknown_count(), 4 + stages);
            assert_eq!(
                nl.devices().len(),
                2 + 3 * stages,
                "two sources plus a P/N pair and a load per stage"
            );
        }
    }

    #[test]
    fn rc_ladder_shape() {
        let nl = rc_ladder(8, 1e3, 1e-12);
        assert_eq!(nl.node_count(), 10); // ground + vin + 8 ladder nodes
        assert_eq!(nl.unknown_count(), 10); // 9 nodes + 1 branch
        assert_eq!(nl.devices().len(), 17); // VIN + 8 R + 8 C
                                            // Looking up "out" must intern to an *existing* node (the final
                                            // ladder node), not create a fresh floating one.
        let mut check = rc_ladder(8, 1e3, 1e-12);
        let nodes_before = check.node_count();
        let out = check.node("out");
        assert_eq!(check.node_count(), nodes_before, "out already existed");
        assert_eq!(out.index(), nodes_before - 1, "out is the last ladder node");
    }

    #[test]
    #[should_panic(expected = "at least one section")]
    fn empty_rc_ladder_panics() {
        rc_ladder(0, 1e3, 1e-12);
    }

    #[test]
    fn topology_fingerprint_ignores_values_but_not_structure() {
        // Same topology, different values: identical fingerprints.
        let a = inverter_chain_with_load(6, Some(10e3));
        let b = inverter_chain_with_load(6, Some(17e3));
        assert_eq!(a.topology_fingerprint(), b.topology_fingerprint());
        // Structural changes move the fingerprint.
        let longer = inverter_chain_with_load(7, Some(10e3));
        assert_ne!(a.topology_fingerprint(), longer.topology_fingerprint());
        let unloaded = inverter_chain_with_load(6, None);
        assert_ne!(a.topology_fingerprint(), unloaded.topology_fingerprint());
        // Device kind matters even with identical connectivity.
        let mut r = Netlist::new();
        let n1 = r.node("a");
        r.resistor("X", n1, GROUND, 1e3);
        let mut c = Netlist::new();
        let n2 = c.node("a");
        c.capacitor("X", n2, GROUND, 1e-12);
        assert_ne!(r.topology_fingerprint(), c.topology_fingerprint());
        // MOSFET model-card changes (corner/mismatch) are values too.
        let mut m1 = Netlist::new();
        let d = m1.node("d");
        m1.mosfet("M", d, d, GROUND, MosModel::nmos_28nm(), 1.0, 0.1);
        let mut m2 = Netlist::new();
        let d2 = m2.node("d");
        m2.mosfet("M", d2, d2, GROUND, MosModel::pmos_28nm().with_mismatch(0.01, 0.02), 2.0, 0.05);
        assert_eq!(m1.topology_fingerprint(), m2.topology_fingerprint());
    }

    #[test]
    fn ota_two_stage_shape_and_fingerprint_stability() {
        let nominal = ota_two_stage(&OtaParams::nominal());
        // 7 non-ground nodes + 3 V-source branches.
        assert_eq!(nominal.node_count(), 8);
        assert_eq!(nominal.unknown_count(), 10);
        assert_eq!(nominal.vsource_count(), 3);
        // 3 V + 5 M + 1 I + 1 R + 2 C.
        assert_eq!(nominal.devices().len(), 12);
        assert!(nominal.vsource_branch("VINP").is_some());
        // Every params/cards combination keeps the topology — the
        // precondition for the value-only retarget path across an OTA
        // sizing sweep.
        let sized = ota_two_stage_with_cards(
            &OtaParams { w_in_um: 3.0, itail_ua: 35.0, rl_kohm: 7.0, ..OtaParams::nominal() },
            &OtaCards {
                m1: MosModel::nmos_28nm().with_mismatch(5e-3, -0.01),
                ..OtaCards::nominal()
            },
        );
        assert_eq!(nominal.topology_fingerprint(), sized.topology_fingerprint());
    }
}
