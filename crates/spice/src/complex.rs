//! Minimal complex arithmetic and a complex LU solver for AC analysis.
//!
//! The standard library has no complex type and the offline crate set has
//! no `num-complex`, so the small amount of complex linear algebra AC
//! analysis needs lives here.

/// A complex number `re + j·im`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates `re + j·im`.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Purely real value.
    pub fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Purely imaginary value `j·im`.
    pub fn imag(im: f64) -> Self {
        Self { re: 0.0, im }
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Phase in radians.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self { re: self.re, im: -self.im }
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl std::ops::AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl std::ops::SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

impl std::ops::Div for Complex {
    type Output = Complex;
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.re * rhs.re + rhs.im * rhs.im;
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl std::ops::Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

/// Lets the complex AC systems run through the sparse LU in
/// `glova_linalg::sparse` — same Markowitz ordering, same
/// symbolic-pattern reuse across an entire frequency sweep.
impl glova_linalg::sparse::Scalar for Complex {
    fn zero() -> Self {
        Self::ZERO
    }

    fn one() -> Self {
        Self::ONE
    }

    fn modulus(self) -> f64 {
        self.abs()
    }
}

/// Dense complex matrix (row-major) with LU-with-partial-pivoting solve —
/// just enough for MNA AC systems.
#[derive(Debug, Clone, PartialEq)]
pub struct ComplexMatrix {
    n: usize,
    data: Vec<Complex>,
}

impl ComplexMatrix {
    /// Creates an `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Self { n, data: vec![Complex::ZERO; n * n] }
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Entry accessor.
    pub fn at(&self, i: usize, j: usize) -> Complex {
        self.data[i * self.n + j]
    }

    /// Adds `value` at `(i, j)`.
    pub fn add_at(&mut self, i: usize, j: usize, value: Complex) {
        self.data[i * self.n + j] += value;
    }

    /// Solves `A x = b` in place via LU with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns `Err(pivot_index)` if the matrix is numerically singular.
    pub fn solve(mut self, b: &[Complex]) -> Result<Vec<Complex>, usize> {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        let n = self.n;
        let mut x: Vec<Complex> = b.to_vec();
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Partial pivot on magnitude.
            let mut pivot_row = k;
            let mut best = 0.0;
            for i in k..n {
                let mag = self.at(i, k).abs();
                if mag > best {
                    best = mag;
                    pivot_row = i;
                }
            }
            if best < 1e-300 {
                return Err(k);
            }
            if pivot_row != k {
                for j in 0..n {
                    self.data.swap(k * n + j, pivot_row * n + j);
                }
                perm.swap(k, pivot_row);
                x.swap(k, pivot_row);
            }
            let pivot = self.at(k, k);
            for i in k + 1..n {
                let factor = self.at(i, k) / pivot;
                self.data[i * n + k] = factor;
                for j in k + 1..n {
                    let sub = factor * self.at(k, j);
                    self.data[i * n + j] -= sub;
                }
                let sub = factor * x[k];
                x[i] -= sub;
            }
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut sum = x[i];
            for j in i + 1..n {
                sum -= self.at(i, j) * x[j];
            }
            x[i] = sum / self.at(i, i);
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(3.0, 4.0);
        let b = Complex::new(-1.0, 2.0);
        assert_eq!(a.abs(), 5.0);
        assert_eq!((a + b), Complex::new(2.0, 6.0));
        assert_eq!((a * Complex::ONE), a);
        let quotient = a / b;
        let back = quotient * b;
        assert!((back - a).abs() < 1e-12);
        assert_eq!(a.conj().im, -4.0);
    }

    #[test]
    fn j_squared_is_minus_one() {
        let j = Complex::imag(1.0);
        assert!((j * j - Complex::real(-1.0)).abs() < 1e-15);
    }

    #[test]
    fn solve_complex_system() {
        // (1+j) x0 + 2 x1 = 3 + j;  x0 - j x1 = 1
        let mut a = ComplexMatrix::zeros(2);
        a.add_at(0, 0, Complex::new(1.0, 1.0));
        a.add_at(0, 1, Complex::real(2.0));
        a.add_at(1, 0, Complex::ONE);
        a.add_at(1, 1, Complex::imag(-1.0));
        let b = [Complex::new(3.0, 1.0), Complex::ONE];
        let x = a.clone().solve(&b).expect("nonsingular");
        // Verify residual.
        for i in 0..2 {
            let mut acc = Complex::ZERO;
            for j in 0..2 {
                acc += a.at(i, j) * x[j];
            }
            assert!((acc - b[i]).abs() < 1e-12, "row {i} residual");
        }
    }

    #[test]
    fn singular_matrix_detected() {
        let a = ComplexMatrix::zeros(2);
        assert!(a.solve(&[Complex::ONE, Complex::ONE]).is_err());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let mut a = ComplexMatrix::zeros(2);
        a.add_at(0, 1, Complex::ONE);
        a.add_at(1, 0, Complex::ONE);
        let x = a.solve(&[Complex::real(2.0), Complex::real(3.0)]).unwrap();
        assert!((x[0] - Complex::real(3.0)).abs() < 1e-12);
        assert!((x[1] - Complex::real(2.0)).abs() < 1e-12);
    }
}
