//! Small-signal AC analysis.
//!
//! Linearizes the circuit around its DC operating point (MOSFETs become
//! `g_m`/`g_ds` elements, capacitors become `jωC` admittances) and solves
//! the complex MNA system across a frequency sweep. The excitation is a
//! unit AC source superimposed on one voltage source, so node results are
//! transfer functions relative to it.

use crate::complex::{Complex, ComplexMatrix};
use crate::dc::{operating_point, OperatingPoint};
use crate::device::Device;
use crate::mna::SolverBackend;
use crate::model::MosPolarity;
use crate::netlist::{Netlist, NodeId};
use crate::SpiceError;
use glova_linalg::sparse::{CsrMatrix, SparseLu, Triplets};

/// Result of an AC sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct AcResult {
    frequencies: Vec<f64>,
    solutions: Vec<Vec<Complex>>,
    n_nodes: usize,
}

impl AcResult {
    /// The swept frequencies, Hz.
    pub fn frequencies(&self) -> &[f64] {
        &self.frequencies
    }

    /// Number of frequency points.
    pub fn len(&self) -> usize {
        self.frequencies.len()
    }

    /// Whether the sweep is empty.
    pub fn is_empty(&self) -> bool {
        self.frequencies.is_empty()
    }

    /// Complex node voltage (transfer function vs. the AC source) at
    /// frequency index `idx`.
    pub fn voltage(&self, node: NodeId, idx: usize) -> Complex {
        if node.is_ground() {
            Complex::ZERO
        } else {
            self.solutions[idx][node.index() - 1]
        }
    }

    /// Magnitude response of `node` in dB across the sweep.
    pub fn magnitude_db(&self, node: NodeId) -> Vec<f64> {
        (0..self.len()).map(|i| 20.0 * self.voltage(node, i).abs().max(1e-30).log10()).collect()
    }

    /// −3 dB bandwidth of `node` relative to its first-point gain, Hz
    /// (`None` if the response never drops 3 dB within the sweep).
    pub fn bandwidth_3db(&self, node: NodeId) -> Option<f64> {
        let mags = self.magnitude_db(node);
        let reference = *mags.first()?;
        for (i, &m) in mags.iter().enumerate() {
            if m <= reference - 3.0 {
                return Some(self.frequencies[i]);
            }
        }
        None
    }
}

/// Logarithmic frequency sweep: `points_per_decade` points from `f_start`
/// to `f_stop` (inclusive-ish).
///
/// # Panics
///
/// Panics if frequencies are non-positive or inverted, or
/// `points_per_decade == 0`.
pub fn log_sweep(f_start: f64, f_stop: f64, points_per_decade: usize) -> Vec<f64> {
    assert!(f_start > 0.0 && f_stop > f_start, "invalid sweep range");
    assert!(points_per_decade > 0, "need at least one point per decade");
    let decades = (f_stop / f_start).log10();
    let n = (decades * points_per_decade as f64).ceil() as usize + 1;
    (0..n)
        .map(|i| f_start * 10f64.powf(i as f64 / points_per_decade as f64))
        .take_while(|&f| f <= f_stop * 1.0001)
        .collect()
}

/// Runs an AC sweep with a 1 V AC excitation on voltage source
/// `ac_source_name` (all other sources AC-grounded).
///
/// # Errors
///
/// - [`SpiceError::InvalidNetlist`] if the named source does not exist.
/// - DC or complex-solve failures propagate as their respective errors.
pub fn ac_sweep(
    netlist: &Netlist,
    ac_source_name: &str,
    frequencies: &[f64],
) -> Result<AcResult, SpiceError> {
    ac_sweep_with_backend(netlist, ac_source_name, frequencies, SolverBackend::Auto)
}

/// [`ac_sweep`] with an explicit [`SolverBackend`].
///
/// The small-signal pattern is frequency-independent (only the `jωC`
/// values change), so on the sparse backend the Markowitz pivot order and
/// fill pattern are computed at the first frequency point and every
/// further point pays a numeric-only complex refactorization — the same
/// symbolic reuse the DC path gets across Newton iterations.
///
/// # Errors
///
/// See [`ac_sweep`].
pub fn ac_sweep_with_backend(
    netlist: &Netlist,
    ac_source_name: &str,
    frequencies: &[f64],
    backend: SolverBackend,
) -> Result<AcResult, SpiceError> {
    let ac_branch = netlist.vsource_branch(ac_source_name).ok_or_else(|| {
        SpiceError::InvalidNetlist { reason: format!("no voltage source named {ac_source_name}") }
    })?;
    let op = operating_point(netlist)?;
    let n_nodes = netlist.node_count() - 1;
    let n = netlist.unknown_count();

    let mut solutions = Vec::with_capacity(frequencies.len());
    if backend.resolves_to_sparse(n) {
        let mut b = vec![Complex::ZERO; n];
        // Unit AC excitation on the chosen source's branch equation.
        b[n_nodes + ac_branch] = Complex::ONE;
        let mut lu: Option<SparseLu<Complex>> = None;
        let mut x: Vec<Complex> = Vec::new();
        // The stamp pattern is frequency-invariant (only the jωC values
        // change) and the device walk is deterministic, so the CSR is
        // built once at the first point; every later point rewrites the
        // value array in place through a precomputed push-order →
        // value-index map — no per-frequency builder, sort or
        // allocation.
        let mut system: Option<CsrMatrix<Complex>> = None;
        let mut slot_of: Vec<usize> = Vec::new();
        for &freq in frequencies {
            let omega = 2.0 * std::f64::consts::PI * freq;
            match &mut system {
                Some(csr) => {
                    let values = csr.values_mut();
                    for v in values.iter_mut() {
                        *v = Complex::ZERO;
                    }
                    let mut push = 0usize;
                    stamp_ac(netlist, &op, omega, &mut |_, _, v| {
                        values[slot_of[push]] += v;
                        push += 1;
                    });
                    debug_assert_eq!(push, slot_of.len(), "stamp walk changed shape");
                }
                None => {
                    let mut t = Triplets::new(n, n);
                    stamp_ac(netlist, &op, omega, &mut |i, j, v| t.push(i, j, v));
                    let csr = t.to_csr();
                    slot_of = t
                        .entries()
                        .iter()
                        .map(|&(i, j, _)| {
                            csr.value_index(i, j).expect("pushed entry is in the pattern")
                        })
                        .collect();
                    system = Some(csr);
                }
            }
            let a = system.as_ref().expect("system assembled");
            match &mut lu {
                // Same topology ⇒ same pattern: numeric-only refresh. A
                // frozen pivot that went bad at this frequency falls back
                // to a fresh Markowitz factorization.
                Some(f) => {
                    if f.refactor(a).is_err() {
                        *f = SparseLu::factor(a).map_err(|_| SpiceError::SingularMatrix)?;
                    }
                }
                None => {
                    lu = Some(SparseLu::factor(a).map_err(|_| SpiceError::SingularMatrix)?);
                }
            }
            lu.as_mut().expect("factorization present").solve_into(&b, &mut x);
            solutions.push(x[..n_nodes].to_vec());
        }
    } else {
        for &freq in frequencies {
            let omega = 2.0 * std::f64::consts::PI * freq;
            let mut a = ComplexMatrix::zeros(n);
            let mut b = vec![Complex::ZERO; n];
            stamp_ac(netlist, &op, omega, &mut |i, j, v| a.add_at(i, j, v));
            b[n_nodes + ac_branch] = Complex::ONE;
            let x = a.solve(&b).map_err(|_| SpiceError::SingularMatrix)?;
            solutions.push(x[..n_nodes].to_vec());
        }
    }
    Ok(AcResult { frequencies: frequencies.to_vec(), solutions, n_nodes })
}

/// Stamps the linearized (small-signal) system at angular frequency ω
/// into an `(i, j, value)` sink — shared by the dense and sparse
/// assembly paths, so both backends stamp identical systems.
fn stamp_ac(
    netlist: &Netlist,
    op: &OperatingPoint,
    omega: f64,
    add: &mut impl FnMut(usize, usize, Complex),
) {
    let n_nodes = netlist.node_count() - 1;
    let idx = |node: NodeId| -> Option<usize> {
        if node.is_ground() {
            None
        } else {
            Some(node.index() - 1)
        }
    };
    // Small gmin keeps floating nodes solvable.
    for i in 0..n_nodes {
        add(i, i, Complex::real(1e-12));
    }

    let mut stamp = |i: Option<usize>, j: Option<usize>, v: Complex| {
        if let (Some(i), Some(j)) = (i, j) {
            add(i, j, v);
        }
    };

    for device in netlist.devices() {
        match device {
            Device::Resistor { a: na, b: nb, ohms, .. } => {
                let g = Complex::real(1.0 / ohms);
                let (i, j) = (idx(*na), idx(*nb));
                stamp(i, i, g);
                stamp(j, j, g);
                stamp(i, j, -g);
                stamp(j, i, -g);
            }
            Device::Capacitor { a: na, b: nb, farads, .. } => {
                let y = Complex::imag(omega * farads);
                let (i, j) = (idx(*na), idx(*nb));
                stamp(i, j, -y);
                stamp(j, i, -y);
                stamp(i, i, y);
                stamp(j, j, y);
            }
            Device::Vsource { plus, minus, branch, .. } => {
                let k = Some(n_nodes + branch);
                let (p, m) = (idx(*plus), idx(*minus));
                stamp(p, k, Complex::ONE);
                stamp(m, k, -Complex::ONE);
                stamp(k, p, Complex::ONE);
                stamp(k, m, -Complex::ONE);
                // RHS handled by the caller (AC source selection).
            }
            Device::Isource { .. } => {
                // Independent current sources are AC-open.
            }
            Device::Mosfet { drain, gate, source, model, w_um, l_um, .. } => {
                // Small-signal conductances at the DC operating point, in
                // the same carrier-space formulation as the DC stamps.
                let p = match model.polarity {
                    MosPolarity::Nmos => 1.0,
                    MosPolarity::Pmos => -1.0,
                };
                let v = |n: NodeId| -> f64 { op.voltage(n) };
                let wd = p * v(*drain);
                let wg = p * v(*gate);
                let ws = p * v(*source);
                let (nd, ns, wdd, wss) =
                    if wd >= ws { (*drain, *source, wd, ws) } else { (*source, *drain, ws, wd) };
                let ratio = w_um / l_um;
                let (_, gm0, gds0) = model.ids(wg - wss, wdd - wss);
                let gm = Complex::real(gm0 * ratio);
                let gds = Complex::real(gds0 * ratio);
                let (d, s, g) = (idx(nd), idx(ns), idx(*gate));
                stamp(d, g, gm);
                stamp(d, d, gds);
                stamp(d, s, -(gm + gds));
                stamp(s, g, -gm);
                stamp(s, d, -gds);
                stamp(s, s, gm + gds);
                // Gate capacitance loads the driving node.
                let cgg = Complex::imag(omega * crate::model_gate_cap(*w_um, *l_um));
                stamp(g, g, cgg);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MosModel;
    use crate::netlist::GROUND;

    #[test]
    fn rc_lowpass_pole_at_expected_frequency() {
        // R = 1 kΩ, C = 159.15 pF → f_3dB ≈ 1 MHz.
        let mut nl = Netlist::new();
        let vin = nl.node("in");
        let out = nl.node("out");
        nl.vsource("VIN", vin, GROUND, 0.0);
        nl.resistor("R1", vin, out, 1e3);
        nl.capacitor("C1", out, GROUND, 159.15e-12);
        let freqs = log_sweep(1e3, 1e8, 20);
        let ac = ac_sweep(&nl, "VIN", &freqs).unwrap();
        let bw = ac.bandwidth_3db(out).expect("pole inside sweep");
        assert!((bw / 1e6 - 1.0).abs() < 0.15, "RC pole at {bw:.3e} Hz, expected ~1 MHz");
        // DC gain ≈ 0 dB.
        assert!(ac.magnitude_db(out)[0].abs() < 0.1);
        // Phase approaches −90° well past the pole.
        let last = ac.voltage(out, ac.len() - 1);
        assert!(last.arg().to_degrees() < -80.0);
    }

    #[test]
    fn rc_highpass_blocks_dc() {
        let mut nl = Netlist::new();
        let vin = nl.node("in");
        let out = nl.node("out");
        nl.vsource("VIN", vin, GROUND, 0.0);
        nl.capacitor("C1", vin, out, 1e-9);
        nl.resistor("R1", out, GROUND, 1e3);
        let freqs = log_sweep(1e2, 1e9, 10);
        let ac = ac_sweep(&nl, "VIN", &freqs).unwrap();
        let mags = ac.magnitude_db(out);
        assert!(mags[0] < -20.0, "low-frequency gain should be tiny: {}", mags[0]);
        assert!(mags[mags.len() - 1] > -1.0, "high-frequency gain should be ~0 dB");
    }

    #[test]
    fn common_source_amplifier_has_gain_and_rolls_off() {
        // Resistor-loaded common-source stage biased in saturation:
        // |A_v| = gm·(RL ∥ ro) at low frequency, rolling off with CL.
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let vin = nl.node("in");
        let out = nl.node("out");
        nl.vsource("VDD", vdd, GROUND, 0.9);
        nl.vsource("VIN", vin, GROUND, 0.5);
        nl.resistor("RL", vdd, out, 20e3);
        nl.mosfet("M1", out, vin, GROUND, MosModel::nmos_28nm(), 2.0, 0.2);
        nl.capacitor("CL", out, GROUND, 1e-12);
        let freqs = log_sweep(1e3, 1e10, 10);
        let ac = ac_sweep(&nl, "VIN", &freqs).unwrap();
        let mags = ac.magnitude_db(out);
        assert!(mags[0] > 6.0, "expected low-frequency voltage gain, got {} dB", mags[0]);
        let bw = ac.bandwidth_3db(out).expect("rolloff inside sweep");
        assert!(bw > 1e5 && bw < 1e9, "bandwidth {bw:.3e}");
        // Inverting stage: output phase ≈ 180° at low frequency.
        let phase0 = ac.voltage(out, 0).arg().to_degrees().abs();
        assert!((phase0 - 180.0).abs() < 15.0, "phase {phase0}");
    }

    #[test]
    fn sparse_backend_matches_dense_across_sweep() {
        // Common-source stage: MOSFET small-signal stamps, gate caps and
        // load caps all present; sparse (with its pattern reused across
        // the sweep) must track dense to solver precision everywhere.
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let vin = nl.node("in");
        let out = nl.node("out");
        nl.vsource("VDD", vdd, GROUND, 0.9);
        nl.vsource("VIN", vin, GROUND, 0.5);
        nl.resistor("RL", vdd, out, 20e3);
        nl.mosfet("M1", out, vin, GROUND, MosModel::nmos_28nm(), 2.0, 0.2);
        nl.capacitor("CL", out, GROUND, 1e-12);
        let freqs = log_sweep(1e3, 1e9, 5);
        let dense =
            ac_sweep_with_backend(&nl, "VIN", &freqs, crate::mna::SolverBackend::Dense).unwrap();
        let sparse =
            ac_sweep_with_backend(&nl, "VIN", &freqs, crate::mna::SolverBackend::Sparse).unwrap();
        for i in 0..freqs.len() {
            let d = dense.voltage(out, i);
            let s = sparse.voltage(out, i);
            assert!(
                (d - s).abs() < 1e-9 * (1.0 + d.abs()),
                "f = {:.3e}: dense {d:?} vs sparse {s:?}",
                freqs[i]
            );
        }
    }

    #[test]
    fn unknown_source_is_an_error() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V1", a, GROUND, 1.0);
        nl.resistor("R", a, GROUND, 1e3);
        assert!(matches!(ac_sweep(&nl, "NOPE", &[1e3]), Err(SpiceError::InvalidNetlist { .. })));
    }

    #[test]
    fn log_sweep_is_logarithmic() {
        let f = log_sweep(1e3, 1e6, 1);
        assert_eq!(f.len(), 4);
        assert!((f[1] / f[0] - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid sweep range")]
    fn inverted_sweep_panics() {
        log_sweep(1e6, 1e3, 10);
    }
}
