//! Small-signal AC analysis.
//!
//! Linearizes the circuit around its DC operating point (MOSFETs become
//! `g_m`/`g_ds` elements, capacitors become `jωC` admittances) and solves
//! the complex MNA system across a frequency sweep. The excitation is a
//! unit AC source superimposed on one voltage source, so node results are
//! transfer functions relative to it.

use crate::complex::{Complex, ComplexMatrix};
use crate::dc::{operating_point, OperatingPoint};
use crate::device::Device;
use crate::mna::SolverBackend;
use crate::model::MosPolarity;
use crate::netlist::{Netlist, NodeId};
use crate::SpiceError;
use glova_linalg::sparse::{CsrMatrix, SparseLu, Triplets};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Result of an AC sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct AcResult {
    frequencies: Vec<f64>,
    solutions: Vec<Vec<Complex>>,
    n_nodes: usize,
}

impl AcResult {
    /// The swept frequencies, Hz.
    pub fn frequencies(&self) -> &[f64] {
        &self.frequencies
    }

    /// Number of frequency points.
    pub fn len(&self) -> usize {
        self.frequencies.len()
    }

    /// Whether the sweep is empty.
    pub fn is_empty(&self) -> bool {
        self.frequencies.is_empty()
    }

    /// Complex node voltage (transfer function vs. the AC source) at
    /// frequency index `idx`.
    pub fn voltage(&self, node: NodeId, idx: usize) -> Complex {
        if node.is_ground() {
            Complex::ZERO
        } else {
            self.solutions[idx][node.index() - 1]
        }
    }

    /// Magnitude response of `node` in dB across the sweep.
    pub fn magnitude_db(&self, node: NodeId) -> Vec<f64> {
        (0..self.len()).map(|i| 20.0 * self.voltage(node, i).abs().max(1e-30).log10()).collect()
    }

    /// −3 dB bandwidth of `node` relative to its first-point gain, Hz
    /// (`None` if the response never drops 3 dB within the sweep).
    pub fn bandwidth_3db(&self, node: NodeId) -> Option<f64> {
        let mags = self.magnitude_db(node);
        let reference = *mags.first()?;
        for (i, &m) in mags.iter().enumerate() {
            if m <= reference - 3.0 {
                return Some(self.frequencies[i]);
            }
        }
        None
    }

    /// Assembles a result from independently solved points — the entry
    /// point for engine-dispatched sweeps that fan
    /// [`AcSolverPool::solve_point`] out over worker threads and collect
    /// in index order. `solutions[i]` must be the node-voltage vector
    /// (length = non-ground node count) at `frequencies[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths disagree.
    pub fn from_parts(frequencies: Vec<f64>, solutions: Vec<Vec<Complex>>, n_nodes: usize) -> Self {
        assert_eq!(frequencies.len(), solutions.len(), "one solution per frequency");
        assert!(solutions.iter().all(|s| s.len() == n_nodes), "solution dimension mismatch");
        Self { frequencies, solutions, n_nodes }
    }
}

/// Logarithmic frequency sweep: `points_per_decade` points from `f_start`
/// to `f_stop` (inclusive-ish).
///
/// # Panics
///
/// Panics if frequencies are non-positive or inverted, or
/// `points_per_decade == 0`.
pub fn log_sweep(f_start: f64, f_stop: f64, points_per_decade: usize) -> Vec<f64> {
    assert!(f_start > 0.0 && f_stop > f_start, "invalid sweep range");
    assert!(points_per_decade > 0, "need at least one point per decade");
    let decades = (f_stop / f_start).log10();
    let n = (decades * points_per_decade as f64).ceil() as usize + 1;
    (0..n)
        .map(|i| f_start * 10f64.powf(i as f64 / points_per_decade as f64))
        .take_while(|&f| f <= f_stop * 1.0001)
        .collect()
}

/// Runs an AC sweep with a 1 V AC excitation on voltage source
/// `ac_source_name` (all other sources AC-grounded).
///
/// # Errors
///
/// - [`SpiceError::InvalidNetlist`] if the named source does not exist.
/// - DC or complex-solve failures propagate as their respective errors.
pub fn ac_sweep(
    netlist: &Netlist,
    ac_source_name: &str,
    frequencies: &[f64],
) -> Result<AcResult, SpiceError> {
    ac_sweep_with_backend(netlist, ac_source_name, frequencies, SolverBackend::Auto)
}

/// [`ac_sweep`] with an explicit [`SolverBackend`].
///
/// The small-signal pattern is frequency-independent (only the `jωC`
/// values change), so on the sparse backend the Markowitz pivot order and
/// fill pattern are computed once and every point pays a numeric-only
/// complex refactorization — the same symbolic reuse the DC path gets
/// across Newton iterations. Implemented as a sequential drive of
/// [`AcSolverPool`]; engine-dispatched sweeps fan the same pool out over
/// worker threads (`glova::sweep::ac_sweep_with_engine`) with bitwise
/// identical results.
///
/// # Errors
///
/// See [`ac_sweep`].
pub fn ac_sweep_with_backend(
    netlist: &Netlist,
    ac_source_name: &str,
    frequencies: &[f64],
    backend: SolverBackend,
) -> Result<AcResult, SpiceError> {
    let pool = AcSolverPool::new(netlist, ac_source_name, frequencies, backend)?;
    let mut solutions = Vec::with_capacity(frequencies.len());
    for &freq in frequencies {
        solutions.push(pool.solve_point(freq)?);
    }
    Ok(AcResult::from_parts(frequencies.to_vec(), solutions, pool.n_nodes()))
}

/// [`ac_sweep_with_backend`] over a caller-provided DC operating point —
/// for circuits that already solved DC through a pooled solver (power
/// metrics) and linearize around that same solution for AC metrics,
/// skipping the second Newton solve per evaluation.
///
/// # Errors
///
/// See [`ac_sweep`] (minus the DC-solve failures).
pub fn ac_sweep_with_backend_from_op(
    netlist: &Netlist,
    op: OperatingPoint,
    ac_source_name: &str,
    frequencies: &[f64],
    backend: SolverBackend,
) -> Result<AcResult, SpiceError> {
    let pool = AcSolverPool::from_op(netlist, op, ac_source_name, frequencies, backend)?;
    let mut solutions = Vec::with_capacity(frequencies.len());
    for &freq in frequencies {
        solutions.push(pool.solve_point(freq)?);
    }
    Ok(AcResult::from_parts(frequencies.to_vec(), solutions, pool.n_nodes()))
}

/// One compiled small-signal stamp event: the value added to packed CSR
/// slot `slot` at angular frequency ω is `re + j·ω·c`. Every stamp the
/// linearized system produces is purely real (conductances, source
/// couplings) or purely ω-proportional imaginary (capacitive
/// admittances), so this two-scalar form loses nothing — and because
/// IEEE-754 multiplication is sign-magnitude exact, `ω·(−c)` is bitwise
/// `−(ω·c)`, making the replayed value bitwise identical to the one the
/// full stamp walk computes.
#[derive(Debug, Clone, Copy)]
struct AcEvent {
    slot: u32,
    re: f64,
    c: f64,
}

/// Per-worker state for one sparse AC point solve: the CSR system (value
/// array rewritten per point through the shared event template) and a
/// complex [`SparseLu`] cloned from the pool's primed prototype, so
/// every worker refactors over the same canonical symbolic analysis.
#[derive(Debug, Clone)]
struct AcWorker {
    system: CsrMatrix<Complex>,
    /// Push-order → packed-slot map for the rebuild (re-walk) path.
    slot_of: Arc<Vec<usize>>,
    /// Compiled value-retarget template: the stamp walk flattened into
    /// `(slot, re, c)` events replayed per point without touching the
    /// netlist.
    events: Arc<Vec<AcEvent>>,
    lu: SparseLu<Complex>,
    x: Vec<Complex>,
    /// Whether this worker abandoned the canonical pivot order (fresh
    /// factorization after a refactor failure) — retired on return.
    repivoted: bool,
}

/// Returns the worker on every exit path, retiring non-canonical or
/// unwound checkouts (mirrors `OpSolverPool`).
struct Checkout<'p, 'a> {
    pool: &'p AcSolverPool<'a>,
    worker: Option<AcWorker>,
}

impl Drop for Checkout<'_, '_> {
    fn drop(&mut self) {
        let Some(worker) = self.worker.take() else { return };
        let canonical = !std::thread::panicking() && !worker.repivoted;
        let returned = if canonical {
            worker
        } else {
            self.pool.retired.fetch_add(1, Ordering::Relaxed);
            self.pool.proto.clone().expect("sparse pool has a prototype")
        };
        if let Ok(mut free) = self.pool.free.lock() {
            free.push(returned);
        }
    }
}

/// A thread-safe pool of per-worker AC point solvers sharing one complex
/// symbolic analysis — the frequency-sweep analogue of
/// [`OpSolverPool`](crate::dc::OpSolverPool).
///
/// The linearization point (DC operating point) and, on the sparse
/// backend, the CSR pattern plus the primed [`SparseLu`] prototype are
/// computed once at construction; each [`solve_point`](Self::solve_point)
/// then checks a worker out of the free list (cloning the prototype when
/// empty, so at most one worker per concurrent caller materializes),
/// rewrites the value array in place and runs a numeric-only complex
/// refactorization.
///
/// # Determinism
///
/// A point's solution is a pure function of `(netlist, operating point,
/// frequency)` plus the canonical symbolic analysis: workers rewrite
/// every stored value before refactoring, so no per-point state leaks
/// between points, and a worker whose refactor had to fall back to a
/// fresh factorization (still a pure function of the point) is retired
/// rather than returned. Sequential and engine-dispatched sweeps are
/// therefore bitwise identical — `tests/ac_engine_parity.rs` locks this
/// in.
#[derive(Debug)]
pub struct AcSolverPool<'a> {
    netlist: &'a Netlist,
    op: OperatingPoint,
    ac_branch: usize,
    n_nodes: usize,
    n: usize,
    /// Primed sparse prototype; `None` on the dense backend (dense
    /// points are independent full solves) or for empty sweeps.
    proto: Option<AcWorker>,
    free: Mutex<Vec<AcWorker>>,
    spawned: AtomicUsize,
    retired: AtomicUsize,
}

impl<'a> AcSolverPool<'a> {
    /// Builds the pool: solves the DC operating point, resolves the AC
    /// source and (sparse backend, non-empty sweep) primes the prototype
    /// at the sweep's first frequency.
    ///
    /// # Errors
    ///
    /// - [`SpiceError::InvalidNetlist`] if the named source is missing.
    /// - DC-solve failures propagate; a structurally singular
    ///   small-signal system surfaces as [`SpiceError::SingularMatrix`]
    ///   at priming time.
    pub fn new(
        netlist: &'a Netlist,
        ac_source_name: &str,
        frequencies: &[f64],
        backend: SolverBackend,
    ) -> Result<Self, SpiceError> {
        let op = operating_point(netlist)?;
        Self::from_op(netlist, op, ac_source_name, frequencies, backend)
    }

    /// [`new`](Self::new) over a caller-provided operating point —
    /// circuits that already solved DC through a pooled
    /// [`OpSolver`](crate::dc::OpSolver) (e.g. for power metrics) reuse
    /// it here instead of paying a second Newton solve.
    ///
    /// # Errors
    ///
    /// See [`AcSolverPool::new`].
    pub fn from_op(
        netlist: &'a Netlist,
        op: OperatingPoint,
        ac_source_name: &str,
        frequencies: &[f64],
        backend: SolverBackend,
    ) -> Result<Self, SpiceError> {
        let ac_branch =
            netlist.vsource_branch(ac_source_name).ok_or_else(|| SpiceError::InvalidNetlist {
                reason: format!("no voltage source named {ac_source_name}"),
            })?;
        let n_nodes = netlist.node_count() - 1;
        let n = netlist.unknown_count();
        let proto = if backend.resolves_to_sparse(n) && !frequencies.is_empty() {
            // The stamp pattern is frequency-invariant (only the jωC
            // values change) and the device walk is deterministic, so
            // the stamp walk is run exactly once here, in `(re, c)`
            // parts form: it yields the CSR pattern, the push-order →
            // value-index map for the rebuild path, and the compiled
            // event template the per-point fast path replays. The
            // symbolic analysis is primed at the first sweep frequency
            // and shared by every worker clone.
            let omega = 2.0 * std::f64::consts::PI * frequencies[0];
            let mut parts: Vec<(usize, usize, f64, f64)> = Vec::new();
            stamp_ac_parts(netlist, &op, &mut |i, j, re, c| parts.push((i, j, re, c)));
            let mut t = Triplets::new(n, n);
            for &(i, j, re, c) in &parts {
                t.push(i, j, Complex::new(re, omega * c));
            }
            let system = t.to_csr();
            let slot_of: Arc<Vec<usize>> = Arc::new(
                t.entries()
                    .iter()
                    .map(|&(i, j, _)| {
                        system.value_index(i, j).expect("pushed entry is in the pattern")
                    })
                    .collect(),
            );
            let events: Arc<Vec<AcEvent>> = Arc::new(
                parts
                    .iter()
                    .zip(slot_of.iter())
                    .map(|(&(_, _, re, c), &slot)| AcEvent { slot: slot as u32, re, c })
                    .collect(),
            );
            let lu = SparseLu::factor(&system).map_err(|_| SpiceError::SingularMatrix)?;
            Some(AcWorker { system, slot_of, events, lu, x: Vec::new(), repivoted: false })
        } else {
            None
        };
        Ok(Self {
            netlist,
            op,
            ac_branch,
            n_nodes,
            n,
            proto,
            free: Mutex::new(Vec::new()),
            spawned: AtomicUsize::new(0),
            retired: AtomicUsize::new(0),
        })
    }

    /// Non-ground node count (the length of each solution vector).
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Workers materialized so far — bounded by the peak number of
    /// concurrent [`solve_point`](Self::solve_point) callers.
    pub fn workers_spawned(&self) -> usize {
        self.spawned.load(Ordering::Relaxed)
    }

    /// Workers retired after abandoning the canonical pivot order.
    pub fn workers_retired(&self) -> usize {
        self.retired.load(Ordering::Relaxed)
    }

    /// Solves the small-signal system at `freq_hz` (unit excitation on
    /// the AC source), returning the non-ground node voltages.
    ///
    /// On the sparse backend the per-point values come from the compiled
    /// event template (value-only retargeting) — no netlist walk per
    /// point. Bitwise identical to
    /// [`solve_point_rebuild`](Self::solve_point_rebuild); the
    /// `sweep_fastpaths` battery locks the parity in.
    ///
    /// # Errors
    ///
    /// [`SpiceError::SingularMatrix`] if the point's system cannot be
    /// factored even freshly.
    pub fn solve_point(&self, freq_hz: f64) -> Result<Vec<Complex>, SpiceError> {
        self.solve_point_impl(freq_hz, true)
    }

    /// [`solve_point`](Self::solve_point) without the value-retarget
    /// fast path: re-walks the netlist's stamp loop at every point — the
    /// parity oracle and benchmark baseline for the event template.
    ///
    /// # Errors
    ///
    /// See [`solve_point`](Self::solve_point).
    pub fn solve_point_rebuild(&self, freq_hz: f64) -> Result<Vec<Complex>, SpiceError> {
        self.solve_point_impl(freq_hz, false)
    }

    fn solve_point_impl(&self, freq_hz: f64, retarget: bool) -> Result<Vec<Complex>, SpiceError> {
        let omega = 2.0 * std::f64::consts::PI * freq_hz;
        let mut b = vec![Complex::ZERO; self.n];
        b[self.n_nodes + self.ac_branch] = Complex::ONE;
        if self.proto.is_none() {
            // Dense backend: each point is an independent full solve.
            let mut a = ComplexMatrix::zeros(self.n);
            stamp_ac(self.netlist, &self.op, omega, &mut |i, j, v| a.add_at(i, j, v));
            let x = a.solve(&b).map_err(|_| SpiceError::SingularMatrix)?;
            return Ok(x[..self.n_nodes].to_vec());
        }
        let mut checkout = self.checkout();
        let w = checkout.worker.as_mut().expect("worker present until drop");
        Self::restamp_worker(self.netlist, &self.op, w, omega, retarget);
        // Numeric-only refresh over the canonical symbolic analysis; a
        // pivot that collapsed at this frequency falls back to a fresh
        // factorization (pure per point) and retires the worker.
        if w.lu.refactor(&w.system).is_err() {
            w.lu = SparseLu::factor(&w.system).map_err(|_| SpiceError::SingularMatrix)?;
            w.repivoted = true;
        }
        let mut x = std::mem::take(&mut w.x);
        w.lu.solve_into(&b, &mut x);
        let solution = x[..self.n_nodes].to_vec();
        w.x = x;
        Ok(solution)
    }

    /// Rewrites a worker's value array for `freq_hz` through the
    /// compiled event template and returns the number of events
    /// replayed, without factoring or solving — the benchmark probe for
    /// the per-point assembly cost in isolation. Returns 0 on the dense
    /// backend (no template exists there).
    pub fn restamp_point(&self, freq_hz: f64) -> usize {
        self.restamp_impl(freq_hz, true)
    }

    /// [`restamp_point`](Self::restamp_point) through the full netlist
    /// re-walk instead of the template — the baseline the
    /// `spice_ac_retarget` gate measures against.
    pub fn restamp_point_rebuild(&self, freq_hz: f64) -> usize {
        self.restamp_impl(freq_hz, false)
    }

    fn restamp_impl(&self, freq_hz: f64, retarget: bool) -> usize {
        if self.proto.is_none() {
            return 0;
        }
        let omega = 2.0 * std::f64::consts::PI * freq_hz;
        let mut checkout = self.checkout();
        let w = checkout.worker.as_mut().expect("worker present until drop");
        Self::restamp_worker(self.netlist, &self.op, w, omega, retarget)
    }

    /// Checks a worker out of the free list (cloning the prototype when
    /// empty). Only valid on the sparse backend.
    fn checkout(&self) -> Checkout<'_, 'a> {
        let proto = self.proto.as_ref().expect("sparse pool has a prototype");
        let worker = self.free.lock().expect("ac pool poisoned").pop().unwrap_or_else(|| {
            self.spawned.fetch_add(1, Ordering::Relaxed);
            proto.clone()
        });
        Checkout { pool: self, worker: Some(worker) }
    }

    /// Rewrites every stored value of `w` for angular frequency `omega`
    /// — no state carries over from whatever point the worker solved
    /// last. `retarget` replays the compiled event template; otherwise
    /// the netlist stamp loop is re-walked (the two are bitwise
    /// identical: same slots, same addends, same order). Returns the
    /// number of stamp events applied.
    fn restamp_worker(
        netlist: &Netlist,
        op: &OperatingPoint,
        w: &mut AcWorker,
        omega: f64,
        retarget: bool,
    ) -> usize {
        let values = w.system.values_mut();
        for v in values.iter_mut() {
            *v = Complex::ZERO;
        }
        if retarget {
            for ev in w.events.iter() {
                values[ev.slot as usize] += Complex::new(ev.re, omega * ev.c);
            }
            w.events.len()
        } else {
            let mut push = 0usize;
            let slot_of = &w.slot_of;
            stamp_ac(netlist, op, omega, &mut |_, _, v| {
                values[slot_of[push]] += v;
                push += 1;
            });
            debug_assert_eq!(push, slot_of.len(), "stamp walk changed shape");
            push
        }
    }
}

/// Stamps the linearized (small-signal) system at angular frequency ω
/// into an `(i, j, value)` sink — shared by the dense and sparse
/// assembly paths, so both backends stamp identical systems.
///
/// A thin wrapper over [`stamp_ac_parts`]: every small-signal stamp is
/// purely real or purely ω-proportional imaginary, and IEEE-754
/// multiplication is sign-magnitude exact, so reconstructing
/// `re + j·ω·c` here is bitwise identical to computing each stamp
/// directly at ω.
fn stamp_ac(
    netlist: &Netlist,
    op: &OperatingPoint,
    omega: f64,
    add: &mut impl FnMut(usize, usize, Complex),
) {
    stamp_ac_parts(netlist, op, &mut |i, j, re, c| add(i, j, Complex::new(re, omega * c)));
}

/// The frequency-independent decomposition of the small-signal stamp
/// walk: each emitted `(i, j, re, c)` contributes `re + j·ω·c` at
/// angular frequency ω. Run once per pool, this walk yields the compiled
/// event template [`AcSolverPool`] replays per point; signed zeros in
/// the `re`/`c` parts are chosen so the reconstruction matches the
/// direct stamps (which negate whole [`Complex`] values) bitwise.
fn stamp_ac_parts(
    netlist: &Netlist,
    op: &OperatingPoint,
    add: &mut impl FnMut(usize, usize, f64, f64),
) {
    let n_nodes = netlist.node_count() - 1;
    let idx = |node: NodeId| -> Option<usize> {
        if node.is_ground() {
            None
        } else {
            Some(node.index() - 1)
        }
    };
    // Small gmin keeps floating nodes solvable.
    for i in 0..n_nodes {
        add(i, i, 1e-12, 0.0);
    }

    let mut stamp = |i: Option<usize>, j: Option<usize>, re: f64, c: f64| {
        if let (Some(i), Some(j)) = (i, j) {
            add(i, j, re, c);
        }
    };

    for device in netlist.devices() {
        match device {
            Device::Resistor { a: na, b: nb, ohms, .. } => {
                let g = 1.0 / ohms;
                let (i, j) = (idx(*na), idx(*nb));
                stamp(i, i, g, 0.0);
                stamp(j, j, g, 0.0);
                stamp(i, j, -g, -0.0);
                stamp(j, i, -g, -0.0);
            }
            Device::Capacitor { a: na, b: nb, farads, .. } => {
                let (i, j) = (idx(*na), idx(*nb));
                stamp(i, j, -0.0, -farads);
                stamp(j, i, -0.0, -farads);
                stamp(i, i, 0.0, *farads);
                stamp(j, j, 0.0, *farads);
            }
            Device::Vsource { plus, minus, branch, .. } => {
                let k = Some(n_nodes + branch);
                let (p, m) = (idx(*plus), idx(*minus));
                stamp(p, k, 1.0, 0.0);
                stamp(m, k, -1.0, -0.0);
                stamp(k, p, 1.0, 0.0);
                stamp(k, m, -1.0, -0.0);
                // RHS handled by the caller (AC source selection).
            }
            Device::Isource { .. } => {
                // Independent current sources are AC-open.
            }
            Device::Mosfet { drain, gate, source, model, w_um, l_um, .. } => {
                // Small-signal conductances at the DC operating point, in
                // the same carrier-space formulation as the DC stamps.
                let p = match model.polarity {
                    MosPolarity::Nmos => 1.0,
                    MosPolarity::Pmos => -1.0,
                };
                let v = |n: NodeId| -> f64 { op.voltage(n) };
                let wd = p * v(*drain);
                let wg = p * v(*gate);
                let ws = p * v(*source);
                let (nd, ns, wdd, wss) =
                    if wd >= ws { (*drain, *source, wd, ws) } else { (*source, *drain, ws, wd) };
                let ratio = w_um / l_um;
                let (_, gm0, gds0) = model.ids(wg - wss, wdd - wss);
                let gm = gm0 * ratio;
                let gds = gds0 * ratio;
                let (d, s, g) = (idx(nd), idx(ns), idx(*gate));
                stamp(d, g, gm, 0.0);
                stamp(d, d, gds, 0.0);
                stamp(d, s, -(gm + gds), -0.0);
                stamp(s, g, -gm, -0.0);
                stamp(s, d, -gds, -0.0);
                stamp(s, s, gm + gds, 0.0);
                // Gate capacitance loads the driving node.
                stamp(g, g, 0.0, crate::model_gate_cap(*w_um, *l_um));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MosModel;
    use crate::netlist::GROUND;

    #[test]
    fn rc_lowpass_pole_at_expected_frequency() {
        // R = 1 kΩ, C = 159.15 pF → f_3dB ≈ 1 MHz.
        let mut nl = Netlist::new();
        let vin = nl.node("in");
        let out = nl.node("out");
        nl.vsource("VIN", vin, GROUND, 0.0);
        nl.resistor("R1", vin, out, 1e3);
        nl.capacitor("C1", out, GROUND, 159.15e-12);
        let freqs = log_sweep(1e3, 1e8, 20);
        let ac = ac_sweep(&nl, "VIN", &freqs).unwrap();
        let bw = ac.bandwidth_3db(out).expect("pole inside sweep");
        assert!((bw / 1e6 - 1.0).abs() < 0.15, "RC pole at {bw:.3e} Hz, expected ~1 MHz");
        // DC gain ≈ 0 dB.
        assert!(ac.magnitude_db(out)[0].abs() < 0.1);
        // Phase approaches −90° well past the pole.
        let last = ac.voltage(out, ac.len() - 1);
        assert!(last.arg().to_degrees() < -80.0);
    }

    #[test]
    fn rc_highpass_blocks_dc() {
        let mut nl = Netlist::new();
        let vin = nl.node("in");
        let out = nl.node("out");
        nl.vsource("VIN", vin, GROUND, 0.0);
        nl.capacitor("C1", vin, out, 1e-9);
        nl.resistor("R1", out, GROUND, 1e3);
        let freqs = log_sweep(1e2, 1e9, 10);
        let ac = ac_sweep(&nl, "VIN", &freqs).unwrap();
        let mags = ac.magnitude_db(out);
        assert!(mags[0] < -20.0, "low-frequency gain should be tiny: {}", mags[0]);
        assert!(mags[mags.len() - 1] > -1.0, "high-frequency gain should be ~0 dB");
    }

    #[test]
    fn common_source_amplifier_has_gain_and_rolls_off() {
        // Resistor-loaded common-source stage biased in saturation:
        // |A_v| = gm·(RL ∥ ro) at low frequency, rolling off with CL.
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let vin = nl.node("in");
        let out = nl.node("out");
        nl.vsource("VDD", vdd, GROUND, 0.9);
        nl.vsource("VIN", vin, GROUND, 0.5);
        nl.resistor("RL", vdd, out, 20e3);
        nl.mosfet("M1", out, vin, GROUND, MosModel::nmos_28nm(), 2.0, 0.2);
        nl.capacitor("CL", out, GROUND, 1e-12);
        let freqs = log_sweep(1e3, 1e10, 10);
        let ac = ac_sweep(&nl, "VIN", &freqs).unwrap();
        let mags = ac.magnitude_db(out);
        assert!(mags[0] > 6.0, "expected low-frequency voltage gain, got {} dB", mags[0]);
        let bw = ac.bandwidth_3db(out).expect("rolloff inside sweep");
        assert!(bw > 1e5 && bw < 1e9, "bandwidth {bw:.3e}");
        // Inverting stage: output phase ≈ 180° at low frequency.
        let phase0 = ac.voltage(out, 0).arg().to_degrees().abs();
        assert!((phase0 - 180.0).abs() < 15.0, "phase {phase0}");
    }

    #[test]
    fn sparse_backend_matches_dense_across_sweep() {
        // Common-source stage: MOSFET small-signal stamps, gate caps and
        // load caps all present; sparse (with its pattern reused across
        // the sweep) must track dense to solver precision everywhere.
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let vin = nl.node("in");
        let out = nl.node("out");
        nl.vsource("VDD", vdd, GROUND, 0.9);
        nl.vsource("VIN", vin, GROUND, 0.5);
        nl.resistor("RL", vdd, out, 20e3);
        nl.mosfet("M1", out, vin, GROUND, MosModel::nmos_28nm(), 2.0, 0.2);
        nl.capacitor("CL", out, GROUND, 1e-12);
        let freqs = log_sweep(1e3, 1e9, 5);
        let dense =
            ac_sweep_with_backend(&nl, "VIN", &freqs, crate::mna::SolverBackend::Dense).unwrap();
        let sparse =
            ac_sweep_with_backend(&nl, "VIN", &freqs, crate::mna::SolverBackend::Sparse).unwrap();
        for i in 0..freqs.len() {
            let d = dense.voltage(out, i);
            let s = sparse.voltage(out, i);
            assert!(
                (d - s).abs() < 1e-9 * (1.0 + d.abs()),
                "f = {:.3e}: dense {d:?} vs sparse {s:?}",
                freqs[i]
            );
        }
    }

    #[test]
    fn unknown_source_is_an_error() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V1", a, GROUND, 1.0);
        nl.resistor("R", a, GROUND, 1e3);
        assert!(matches!(ac_sweep(&nl, "NOPE", &[1e3]), Err(SpiceError::InvalidNetlist { .. })));
    }

    #[test]
    fn log_sweep_is_logarithmic() {
        let f = log_sweep(1e3, 1e6, 1);
        assert_eq!(f.len(), 4);
        assert!((f[1] / f[0] - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid sweep range")]
    fn inverted_sweep_panics() {
        log_sweep(1e6, 1e3, 10);
    }
}
