//! MOSFET model cards with PVT and mismatch dependence.
//!
//! A level-1 (square-law) model is deliberately chosen over BSIM-class
//! models: the optimization loop needs the *shape* of PVT/mismatch response
//! (threshold shifts, mobility-temperature scaling, corner skews), not
//! sub-nanometer I–V accuracy, and the square law keeps Newton iteration
//! robust across the whole sizing space.

use glova_variation::corner::PvtCorner;

/// Channel polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosPolarity {
    /// N-channel.
    Nmos,
    /// P-channel.
    Pmos,
}

/// A level-1 MOSFET model card evaluated at a PVT corner.
///
/// Construct the 28 nm nominal cards with [`MosModel::nmos_28nm`] /
/// [`MosModel::pmos_28nm`], then specialize with
/// [`MosModel::at_corner`] and [`MosModel::with_mismatch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosModel {
    /// Polarity.
    pub polarity: MosPolarity,
    /// Zero-bias threshold voltage magnitude, volts.
    pub vth0: f64,
    /// Transconductance parameter `k' = µ C_ox` in A/V².
    pub kp: f64,
    /// Channel-length modulation, 1/V.
    pub lambda: f64,
}

impl MosModel {
    /// Corner V_th skew per unit process skew, volts (fast ⇒ lower V_th).
    const CORNER_VTH_SHIFT: f64 = 0.030;
    /// Corner mobility skew per unit process skew (relative).
    const CORNER_KP_FACTOR: f64 = 0.08;
    /// Threshold temperature coefficient, V/K (V_th drops when hot).
    const VTH_TEMP_COEFF: f64 = -8.0e-4;
    /// Mobility–temperature exponent: `µ(T) = µ₀ (T/300K)^-1.3`.
    const MOBILITY_TEMP_EXP: f64 = -1.3;
    /// Reference temperature, K.
    const T_REF: f64 = 300.15;

    /// Nominal 28 nm NMOS card (TT, 27 °C).
    pub fn nmos_28nm() -> Self {
        Self { polarity: MosPolarity::Nmos, vth0: 0.35, kp: 300e-6, lambda: 0.10 }
    }

    /// Nominal 28 nm PMOS card (TT, 27 °C). `vth0` is the magnitude.
    pub fn pmos_28nm() -> Self {
        Self { polarity: MosPolarity::Pmos, vth0: 0.35, kp: 120e-6, lambda: 0.12 }
    }

    /// Specializes the card to a PVT corner: V_th skewed by the process
    /// corner and temperature, mobility by corner skew and the
    /// `(T/300)^-1.3` law.
    pub fn at_corner(&self, corner: &PvtCorner) -> Self {
        let skew = match self.polarity {
            MosPolarity::Nmos => corner.process.nmos_skew(),
            MosPolarity::Pmos => corner.process.pmos_skew(),
        };
        let dt = corner.temp_k() - Self::T_REF;
        // Fast skew (+1) lowers V_th and raises mobility.
        let vth = self.vth0 - skew * Self::CORNER_VTH_SHIFT + Self::VTH_TEMP_COEFF * dt;
        let kp = self.kp
            * (1.0 + skew * Self::CORNER_KP_FACTOR)
            * (corner.temp_k() / Self::T_REF).powf(Self::MOBILITY_TEMP_EXP);
        Self { polarity: self.polarity, vth0: vth, kp, lambda: self.lambda }
    }

    /// Applies per-device mismatch: an additive threshold shift and a
    /// relative current-factor error.
    pub fn with_mismatch(&self, delta_vth: f64, delta_beta_rel: f64) -> Self {
        Self {
            polarity: self.polarity,
            vth0: self.vth0 + delta_vth,
            kp: self.kp * (1.0 + delta_beta_rel),
            lambda: self.lambda,
        }
    }

    /// Drain current and small-signal conductances at the given bias.
    ///
    /// For NMOS the arguments are `(v_gs, v_ds)`; for PMOS pass
    /// source-referenced magnitudes `(v_sg, v_sd)` — the netlist stamping
    /// layer handles sign conventions. Returns `(i_d, g_m, g_ds)` with
    /// `i_d ≥ 0` flowing drain→source.
    pub fn ids(&self, vgs: f64, vds: f64) -> (f64, f64, f64) {
        // Minimum output conductance keeps the Jacobian non-singular in
        // cutoff.
        const GMIN: f64 = 1e-12;
        let vov = vgs - self.vth0;
        if vov <= 0.0 {
            // Cutoff: tiny subthreshold-ish leakage, linear in vds.
            return (GMIN * vds, 0.0, GMIN);
        }
        if vds < vov {
            // Triode.
            let id = self.kp * (vov * vds - 0.5 * vds * vds) * (1.0 + self.lambda * vds);
            let gm = self.kp * vds * (1.0 + self.lambda * vds);
            let gds = self.kp
                * ((vov - vds) * (1.0 + self.lambda * vds)
                    + (vov * vds - 0.5 * vds * vds) * self.lambda)
                + GMIN;
            (id, gm, gds)
        } else {
            // Saturation.
            let id = 0.5 * self.kp * vov * vov * (1.0 + self.lambda * vds);
            let gm = self.kp * vov * (1.0 + self.lambda * vds);
            let gds = 0.5 * self.kp * vov * vov * self.lambda + GMIN;
            (id, gm, gds)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glova_variation::corner::{CornerSet, ProcessCorner, PvtCorner};

    #[test]
    fn regions_are_continuous_at_boundary() {
        let m = MosModel::nmos_28nm();
        let vgs = 0.8;
        let vov = vgs - m.vth0;
        let (i_triode, ..) = m.ids(vgs, vov - 1e-9);
        let (i_sat, ..) = m.ids(vgs, vov + 1e-9);
        assert!((i_triode - i_sat).abs() / i_sat < 1e-6);
    }

    #[test]
    fn cutoff_is_nearly_off() {
        let m = MosModel::nmos_28nm();
        let (id, gm, _) = m.ids(0.1, 0.9);
        assert!(id.abs() < 1e-11);
        assert_eq!(gm, 0.0);
    }

    #[test]
    fn conductances_match_finite_difference() {
        let m = MosModel::nmos_28nm();
        let eps = 1e-7;
        for &(vgs, vds) in &[(0.6, 0.1), (0.6, 0.5), (0.9, 0.05), (0.9, 0.8)] {
            let (_, gm, gds) = m.ids(vgs, vds);
            let num_gm = (m.ids(vgs + eps, vds).0 - m.ids(vgs - eps, vds).0) / (2.0 * eps);
            let num_gds = (m.ids(vgs, vds + eps).0 - m.ids(vgs, vds - eps).0) / (2.0 * eps);
            assert!((gm - num_gm).abs() < 1e-6 * (1.0 + num_gm.abs()), "gm at {vgs},{vds}");
            assert!((gds - num_gds).abs() < 1e-6 * (1.0 + num_gds.abs()), "gds at {vgs},{vds}");
        }
    }

    #[test]
    fn ss_corner_is_slower_ff_faster() {
        let m = MosModel::nmos_28nm();
        let base = PvtCorner::typical();
        let ss = PvtCorner { process: ProcessCorner::Ss, ..base };
        let ff = PvtCorner { process: ProcessCorner::Ff, ..base };
        let (i_tt, ..) = m.at_corner(&base).ids(0.9, 0.9);
        let (i_ss, ..) = m.at_corner(&ss).ids(0.9, 0.9);
        let (i_ff, ..) = m.at_corner(&ff).ids(0.9, 0.9);
        assert!(i_ss < i_tt && i_tt < i_ff, "corner ordering: {i_ss} {i_tt} {i_ff}");
    }

    #[test]
    fn sf_corner_skews_polarities_oppositely() {
        let base = PvtCorner::typical();
        let sf = PvtCorner { process: ProcessCorner::Sf, ..base };
        let n = MosModel::nmos_28nm().at_corner(&sf);
        let p = MosModel::pmos_28nm().at_corner(&sf);
        // SF: slow NMOS (higher vth), fast PMOS (lower vth magnitude).
        assert!(n.vth0 > MosModel::nmos_28nm().at_corner(&base).vth0);
        assert!(p.vth0 < MosModel::pmos_28nm().at_corner(&base).vth0);
    }

    #[test]
    fn hot_is_slower_at_high_overdrive() {
        // At high overdrive, mobility degradation dominates V_th reduction.
        let m = MosModel::nmos_28nm();
        let cold = PvtCorner { temp_c: -40.0, ..PvtCorner::typical() };
        let hot = PvtCorner { temp_c: 80.0, ..PvtCorner::typical() };
        let (i_cold, ..) = m.at_corner(&cold).ids(0.9, 0.9);
        let (i_hot, ..) = m.at_corner(&hot).ids(0.9, 0.9);
        assert!(i_hot < i_cold, "temperature inversion at high overdrive: {i_hot} vs {i_cold}");
    }

    #[test]
    fn mismatch_shifts_current() {
        let m = MosModel::nmos_28nm();
        let (i0, ..) = m.ids(0.7, 0.7);
        let (i_hi_vth, ..) = m.with_mismatch(0.03, 0.0).ids(0.7, 0.7);
        let (i_hi_beta, ..) = m.with_mismatch(0.0, 0.05).ids(0.7, 0.7);
        assert!(i_hi_vth < i0);
        assert!((i_hi_beta / i0 - 1.05).abs() < 1e-9);
    }

    #[test]
    fn all_30_corners_yield_positive_kp_and_vth() {
        for corner in CornerSet::industrial_30().iter() {
            for base in [MosModel::nmos_28nm(), MosModel::pmos_28nm()] {
                let m = base.at_corner(corner);
                assert!(m.kp > 0.0, "kp at {corner}");
                assert!(m.vth0 > 0.1 && m.vth0 < 0.6, "vth {} at {corner}", m.vth0);
            }
        }
    }
}
