//! A small SPICE-like circuit simulator.
//!
//! The paper sizes circuits against HSPICE with a proprietary 28 nm PDK —
//! neither is available here, so this crate provides the simulation
//! substrate (see `DESIGN.md` §2 for the substitution argument): a
//! modified-nodal-analysis (MNA) engine with
//!
//! - linear devices (resistors, capacitors, independent V/I sources),
//! - a level-1 (square-law) MOSFET with channel-length modulation whose
//!   model card responds to **process corner, temperature, supply and
//!   per-device mismatch** ([`model::MosModel`]),
//! - Newton–Raphson DC operating-point analysis with `gmin` stepping
//!   ([`dc`]), and
//! - fixed-step backward-Euler / trapezoidal transient analysis
//!   ([`transient`]) with waveform measurement helpers ([`analysis`]).
//!
//! The fast analytic testcase models in `glova-circuits` are cross-checked
//! against this engine in integration tests; the engine itself is exercised
//! directly by the `spice_playground` example.
//!
//! # Example
//!
//! ```
//! use glova_spice::netlist::{Netlist, GROUND};
//!
//! // A 1 kΩ / 1 kΩ divider from a 1 V source.
//! let mut net = Netlist::new();
//! let vin = net.node("in");
//! let mid = net.node("mid");
//! net.vsource("V1", vin, GROUND, 1.0);
//! net.resistor("R1", vin, mid, 1e3);
//! net.resistor("R2", mid, GROUND, 1e3);
//! let op = glova_spice::dc::operating_point(&net).unwrap();
//! assert!((op.voltage(mid) - 0.5).abs() < 1e-9);
//! ```

pub mod ac;
pub mod analysis;
pub mod complex;
pub mod dc;
pub mod device;
pub mod mna;
pub mod model;
pub mod netlist;
pub mod registry;
pub mod transient;

pub use ac::{ac_sweep, ac_sweep_with_backend, log_sweep, AcResult, AcSolverPool};
pub use complex::Complex;
pub use dc::{operating_point, OpSolver, OpSolverPool, OperatingPoint};
pub use glova_linalg::FillOrdering;
pub use mna::{PartialPlanMode, RefactorStats, RetargetOutcome, SolverBackend};
pub use model::{MosModel, MosPolarity};
pub use netlist::{
    inverter_chain, ota_two_stage, rc_ladder, sense_amp_array, sense_amp_array_with, Netlist,
    NodeId, OtaCards, OtaParams, SenseAmpParams, GROUND,
};
pub use registry::{RegistryConfig, SolverRegistry};
pub use transient::{TransientResult, TransientSpec};

/// Gate capacitance of a `w × l` µm device, farads (30 fF/µm² at 28 nm) —
/// shared between the transient parasitics and AC gate loading.
pub(crate) fn model_gate_cap(w_um: f64, l_um: f64) -> f64 {
    30e-15 * w_um * l_um
}

/// Errors produced by simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SpiceError {
    /// The netlist is structurally invalid.
    InvalidNetlist {
        /// What was wrong.
        reason: String,
    },
    /// Newton iteration failed to converge even with `gmin` stepping.
    NonConvergent {
        /// Residual at the last iteration.
        residual: f64,
    },
    /// The system matrix was singular (floating node, V-source loop, …).
    SingularMatrix,
}

impl std::fmt::Display for SpiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpiceError::InvalidNetlist { reason } => write!(f, "invalid netlist: {reason}"),
            SpiceError::NonConvergent { residual } => {
                write!(f, "newton iteration did not converge (residual {residual:.3e})")
            }
            SpiceError::SingularMatrix => f.write_str("singular system matrix"),
        }
    }
}

impl std::error::Error for SpiceError {}

impl From<glova_linalg::LinalgError> for SpiceError {
    fn from(err: glova_linalg::LinalgError) -> Self {
        match err {
            glova_linalg::LinalgError::Singular { .. } => SpiceError::SingularMatrix,
            other => SpiceError::InvalidNetlist { reason: other.to_string() },
        }
    }
}
