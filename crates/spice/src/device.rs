//! Device instances stored in a netlist.

use crate::model::MosModel;
use crate::netlist::{NodeId, SourceWaveform};

/// One device instance.
///
/// Kept as an enum rather than trait objects: the device set is closed (a
/// SPICE engine's device library is part of its definition), matching is
/// exhaustive at the stamping site, and instances stay `Clone`-able for
/// netlist templating.
#[derive(Debug, Clone, PartialEq)]
pub enum Device {
    /// Linear resistor.
    Resistor {
        /// Instance name.
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance, Ω.
        ohms: f64,
    },
    /// Linear capacitor.
    Capacitor {
        /// Instance name.
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance, F.
        farads: f64,
    },
    /// Independent voltage source.
    Vsource {
        /// Instance name.
        name: String,
        /// Positive terminal.
        plus: NodeId,
        /// Negative terminal.
        minus: NodeId,
        /// Source waveform.
        waveform: SourceWaveform,
        /// MNA branch-unknown index.
        branch: usize,
    },
    /// Independent current source (`amps` flows `from → to` through the
    /// source, i.e. it is injected into `to`).
    Isource {
        /// Instance name.
        name: String,
        /// Terminal the current leaves.
        from: NodeId,
        /// Terminal the current enters.
        to: NodeId,
        /// Current, A.
        amps: f64,
    },
    /// Level-1 MOSFET (three-terminal; bulk tied to source).
    Mosfet {
        /// Instance name.
        name: String,
        /// Drain.
        drain: NodeId,
        /// Gate.
        gate: NodeId,
        /// Source.
        source: NodeId,
        /// Model card (already specialized to corner/mismatch).
        model: MosModel,
        /// Gate width, µm.
        w_um: f64,
        /// Gate length, µm.
        l_um: f64,
    },
}

impl Device {
    /// Instance name.
    pub fn name(&self) -> &str {
        match self {
            Device::Resistor { name, .. }
            | Device::Capacitor { name, .. }
            | Device::Vsource { name, .. }
            | Device::Isource { name, .. }
            | Device::Mosfet { name, .. } => name,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::GROUND;

    #[test]
    fn names_accessible() {
        let d = Device::Resistor { name: "R1".into(), a: GROUND, b: GROUND, ohms: 1.0 };
        assert_eq!(d.name(), "R1");
        let m = Device::Mosfet {
            name: "M1".into(),
            drain: GROUND,
            gate: GROUND,
            source: GROUND,
            model: MosModel::nmos_28nm(),
            w_um: 1.0,
            l_um: 0.03,
        };
        assert_eq!(m.name(), "M1");
    }
}
