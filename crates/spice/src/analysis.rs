//! Waveform measurement utilities.
//!
//! The performance metrics of the paper's testcases are waveform
//! measurements: set/reset delays are threshold-crossing times, energy per
//! conversion integrates supply current, sensing margins read settled
//! differential voltages.

/// Edge direction for crossing searches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Edge {
    /// Value crosses the threshold from below.
    Rising,
    /// Value crosses the threshold from above.
    Falling,
}

/// First time `values` crosses `threshold` in the given direction, linearly
/// interpolated between samples. Returns `None` if no crossing occurs.
///
/// # Panics
///
/// Panics if `times.len() != values.len()`.
pub fn crossing_time(times: &[f64], values: &[f64], threshold: f64, edge: Edge) -> Option<f64> {
    assert_eq!(times.len(), values.len(), "waveform length mismatch");
    for i in 1..values.len() {
        let (v0, v1) = (values[i - 1], values[i]);
        let crossed = match edge {
            Edge::Rising => v0 < threshold && v1 >= threshold,
            Edge::Falling => v0 > threshold && v1 <= threshold,
        };
        if crossed {
            let frac = (threshold - v0) / (v1 - v0);
            return Some(times[i - 1] + frac * (times[i] - times[i - 1]));
        }
    }
    None
}

/// Trapezoidal integral of `values` over `times`.
///
/// # Panics
///
/// Panics if `times.len() != values.len()`.
pub fn integrate(times: &[f64], values: &[f64]) -> f64 {
    assert_eq!(times.len(), values.len(), "waveform length mismatch");
    let mut acc = 0.0;
    for i in 1..values.len() {
        acc += 0.5 * (values[i] + values[i - 1]) * (times[i] - times[i - 1]);
    }
    acc
}

/// Energy delivered by a voltage source given its branch-current and
/// terminal-voltage waveforms (positive = delivered to the circuit).
///
/// MNA branch current flows *into* the plus terminal, so delivered power is
/// `−i·v`.
///
/// # Panics
///
/// Panics if waveform lengths differ.
pub fn source_energy(times: &[f64], branch_current: &[f64], voltage: &[f64]) -> f64 {
    assert_eq!(branch_current.len(), voltage.len(), "waveform length mismatch");
    let power: Vec<f64> = branch_current.iter().zip(voltage).map(|(i, v)| -i * v).collect();
    integrate(times, &power)
}

/// Mean of the waveform tail starting at time `t_from` (settled value).
///
/// Returns `None` when no samples lie at or after `t_from`.
///
/// # Panics
///
/// Panics if `times.len() != values.len()`.
pub fn settled_value(times: &[f64], values: &[f64], t_from: f64) -> Option<f64> {
    assert_eq!(times.len(), values.len(), "waveform length mismatch");
    let tail: Vec<f64> =
        times.iter().zip(values).filter(|(t, _)| **t >= t_from).map(|(_, v)| *v).collect();
    if tail.is_empty() {
        None
    } else {
        Some(glova_sum(&tail) / tail.len() as f64)
    }
}

fn glova_sum(xs: &[f64]) -> f64 {
    xs.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rising_crossing_interpolates() {
        let times = [0.0, 1.0, 2.0];
        let values = [0.0, 0.4, 1.0];
        let t = crossing_time(&times, &values, 0.7, Edge::Rising).unwrap();
        assert!((t - 1.5).abs() < 1e-12);
    }

    #[test]
    fn falling_crossing() {
        let times = [0.0, 1.0];
        let values = [1.0, 0.0];
        let t = crossing_time(&times, &values, 0.25, Edge::Falling).unwrap();
        assert!((t - 0.75).abs() < 1e-12);
    }

    #[test]
    fn no_crossing_returns_none() {
        let times = [0.0, 1.0];
        let values = [0.0, 0.5];
        assert_eq!(crossing_time(&times, &values, 0.9, Edge::Rising), None);
        assert_eq!(crossing_time(&times, &values, 0.2, Edge::Falling), None);
    }

    #[test]
    fn integral_of_constant() {
        let times = [0.0, 0.5, 2.0];
        let values = [3.0, 3.0, 3.0];
        assert!((integrate(&times, &values) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn integral_of_ramp() {
        let times: Vec<f64> = (0..=100).map(|i| i as f64 / 100.0).collect();
        let values: Vec<f64> = times.clone();
        assert!((integrate(&times, &values) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn settled_value_tail_mean() {
        let times = [0.0, 1.0, 2.0, 3.0];
        let values = [9.0, 9.0, 2.0, 4.0];
        assert_eq!(settled_value(&times, &values, 2.0), Some(3.0));
        assert_eq!(settled_value(&times, &values, 5.0), None);
    }

    #[test]
    fn source_energy_sign_convention() {
        // Source at 1 V delivering 1 A (branch current −1 A by convention)
        // for 1 s delivers 1 J.
        let times = [0.0, 1.0];
        let current = [-1.0, -1.0];
        let voltage = [1.0, 1.0];
        assert!((source_energy(&times, &current, &voltage) - 1.0).abs() < 1e-12);
    }
}
