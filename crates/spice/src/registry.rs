//! Process-wide solver-pool registry — one primed symbolic analysis per
//! topology, shared across every concurrent campaign.
//!
//! A sweep-local [`OpSolverPool`] amortizes its prototype's symbolic
//! factorization across the points of *one* sweep. A long-running server
//! multiplexing N campaigns over the same circuit topology should pay
//! that prime exactly **once per process**, not once per request —
//! [`SolverRegistry`] is the map that makes pools process-wide residents,
//! keyed by [`Netlist::topology_fingerprint`].
//!
//! # Collision safety
//!
//! The fingerprint is a 64-bit digest; a collision is negligible but not
//! impossible, and silently reusing a wrong symbolic analysis would be a
//! correctness bug (wrong sparsity pattern ⇒ wrong solves), not a slow
//! path. Every registry hit therefore **confirms** the candidate entry
//! against the requesting netlist's full
//! [`structural_signature`](Netlist::structural_signature) word sequence
//! (and the requested [`NewtonOptions`], since the options bake into the
//! primed prototype). A fingerprint match whose confirm fails is counted
//! as a collision and resolved by priming a *separate* entry under the
//! same fingerprint bucket — never by aliasing.
//!
//! # Determinism
//!
//! Sharing a pool cannot change results: every pooled solver is a clone
//! of one canonical primed prototype, a solve is a pure function of the
//! retargeted netlist, and non-canonical solvers are retired on return
//! (see [`OpSolverPool`]). Which campaign's worker happens to check a
//! given solver out is therefore unobservable in the outcomes — the
//! property the concurrent-campaign determinism battery locks in.
//!
//! Lookup-or-prime holds the registry lock across the prime, so exactly
//! one prime happens per unique key no matter how many campaigns race on
//! a cold topology — which also makes the registry's
//! [`primes`](SolverRegistry::primes) counter a deterministic quantity
//! the perfsuite `serve` scenario can gate on.

use crate::dc::OpSolverPool;
use crate::mna::NewtonOptions;
use crate::netlist::Netlist;
use crate::SpiceError;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Eviction policy shared by the process-wide registries
/// ([`SolverRegistry`] here, `CacheRegistry` in the core crate).
///
/// The default policy is unbounded — exactly the pre-eviction behavior.
/// Eviction is `Arc`-safe by construction: the registries hand out
/// `Arc` handles, so evicting an entry only drops the *registry's*
/// reference. In-flight holders keep the evicted pool or cache alive
/// and fully usable; the next registry miss on that key re-primes a
/// fresh entry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryConfig {
    /// Maximum resident entries; the least-recently-used entry is
    /// evicted when an insert would exceed this. `None` = unbounded.
    pub max_entries: Option<usize>,
    /// Entries untouched for longer than this are evicted on the next
    /// registry access. `None` = entries never expire.
    pub ttl: Option<Duration>,
}

impl RegistryConfig {
    /// Unbounded, non-expiring (the default).
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Caps resident entries (builder style).
    pub fn with_max_entries(mut self, max_entries: usize) -> Self {
        self.max_entries = Some(max_entries.max(1));
        self
    }

    /// Expires idle entries after `ttl` (builder style).
    pub fn with_ttl(mut self, ttl: Duration) -> Self {
        self.ttl = Some(ttl);
        self
    }
}

/// One registered pool: the full structural identity it was primed for
/// plus the shared pool itself.
#[derive(Debug)]
struct RegistryEntry {
    signature: Vec<u64>,
    options: NewtonOptions,
    pool: Arc<OpSolverPool>,
    last_used: Instant,
    expired: bool,
}

/// A process-wide map from netlist topology to a shared, primed
/// [`OpSolverPool`] (see the [module docs](self)).
#[derive(Debug, Default)]
pub struct SolverRegistry {
    /// Fingerprint → entries. A bucket normally holds one entry; it holds
    /// several only under a genuine fingerprint collision or when the
    /// same topology is requested under different Newton options.
    buckets: Mutex<HashMap<u64, Vec<RegistryEntry>>>,
    config: RegistryConfig,
    primes: AtomicU64,
    hits: AtomicU64,
    collisions: AtomicU64,
    evictions: AtomicU64,
}

impl SolverRegistry {
    /// Creates an empty registry (tests and scoped servers; production
    /// code normally shares [`Self::global`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty registry under an eviction policy.
    pub fn with_config(config: RegistryConfig) -> Self {
        Self { config, ..Self::default() }
    }

    /// The process-wide registry instance.
    pub fn global() -> &'static SolverRegistry {
        static GLOBAL: OnceLock<SolverRegistry> = OnceLock::new();
        GLOBAL.get_or_init(SolverRegistry::new)
    }

    /// Returns the shared pool for `netlist`'s topology under `options`,
    /// priming (and registering) one if no confirmed entry exists.
    ///
    /// Hits are confirmed against the full structural signature and the
    /// Newton options — a fingerprint collision primes a separate entry,
    /// it never aliases. The registry lock is held across a cold prime,
    /// so racing requesters of one topology produce exactly one prime.
    ///
    /// # Errors
    ///
    /// [`SpiceError::SingularMatrix`] for structurally singular netlists
    /// (nothing is registered on error).
    pub fn pool_for(
        &self,
        netlist: &Netlist,
        options: NewtonOptions,
    ) -> Result<Arc<OpSolverPool>, SpiceError> {
        self.pool_for_keyed(netlist.topology_fingerprint(), netlist, options)
    }

    /// [`Self::pool_for`] with a caller-supplied fingerprint — internal
    /// seam that lets the collision-confirm test force two distinct
    /// topologies into one bucket.
    fn pool_for_keyed(
        &self,
        fingerprint: u64,
        netlist: &Netlist,
        options: NewtonOptions,
    ) -> Result<Arc<OpSolverPool>, SpiceError> {
        let signature = netlist.structural_signature();
        let mut buckets = self.buckets.lock().expect("solver registry poisoned");
        self.sweep_expired(&mut buckets);
        let bucket = buckets.entry(fingerprint).or_default();
        if let Some(entry) =
            bucket.iter_mut().find(|e| e.options == options && e.signature == signature)
        {
            entry.last_used = Instant::now();
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(entry.pool.clone());
        }
        if bucket.iter().any(|e| e.signature != signature) {
            // Same fingerprint, different structure: a genuine digest
            // collision. Count it and fall through to priming a separate
            // entry in the same bucket.
            self.collisions.fetch_add(1, Ordering::Relaxed);
        }
        let pool = Arc::new(OpSolverPool::new(netlist, options)?);
        self.primes.fetch_add(1, Ordering::Relaxed);
        bucket.push(RegistryEntry {
            signature,
            options,
            pool: pool.clone(),
            last_used: Instant::now(),
            expired: false,
        });
        self.enforce_capacity(&mut buckets);
        Ok(pool)
    }

    /// Drops TTL-expired and force-expired entries (lock held by caller).
    fn sweep_expired(&self, buckets: &mut HashMap<u64, Vec<RegistryEntry>>) {
        let ttl = self.config.ttl;
        let now = Instant::now();
        let mut evicted = 0u64;
        buckets.retain(|_, bucket| {
            bucket.retain(|e| {
                let stale =
                    e.expired || ttl.is_some_and(|ttl| now.duration_since(e.last_used) >= ttl);
                if stale {
                    evicted += 1;
                }
                !stale
            });
            !bucket.is_empty()
        });
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Evicts globally-LRU entries until `max_entries` holds (lock held
    /// by caller). The just-inserted entry is the newest, so it is never
    /// the victim.
    fn enforce_capacity(&self, buckets: &mut HashMap<u64, Vec<RegistryEntry>>) {
        let Some(max) = self.config.max_entries else { return };
        loop {
            let total: usize = buckets.values().map(Vec::len).sum();
            if total <= max {
                return;
            }
            let Some((&fp, idx)) = buckets
                .iter()
                .flat_map(|(fp, bucket)| {
                    bucket.iter().enumerate().map(move |(i, e)| ((fp, i), e.last_used))
                })
                .min_by_key(|&(_, last_used)| last_used)
                .map(|((fp, i), _)| (fp, i))
            else {
                return;
            };
            let bucket = buckets.get_mut(&fp).expect("victim bucket exists");
            bucket.remove(idx);
            if bucket.is_empty() {
                buckets.remove(&fp);
            }
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Marks every resident entry expired, forcing eviction on the next
    /// registry access — a test seam standing in for TTL elapse, so
    /// contention batteries need no wall-clock sleeps. Outstanding `Arc`
    /// handles are unaffected (eviction only drops the registry's
    /// reference).
    pub fn force_expire_all(&self) {
        let mut buckets = self.buckets.lock().expect("solver registry poisoned");
        for bucket in buckets.values_mut() {
            for entry in bucket.iter_mut() {
                entry.expired = true;
            }
        }
    }

    /// Prototype primes performed (cold topologies × option sets). Under
    /// registry sharing this counts **unique keys**, not requests — the
    /// deterministic quantity the perfsuite `serve` gate compares against
    /// one-pool-per-campaign construction.
    pub fn primes(&self) -> u64 {
        self.primes.load(Ordering::Relaxed)
    }

    /// Requests answered by an existing confirmed entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Fingerprint matches whose structural confirm failed (each resolved
    /// by priming a separate entry, never by aliasing).
    pub fn collisions(&self) -> u64 {
        self.collisions.load(Ordering::Relaxed)
    }

    /// Entries evicted by TTL expiry, forced expiry or the
    /// `max_entries` LRU cap.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Registered entries (unique topology × options keys).
    pub fn len(&self) -> usize {
        self.buckets.lock().expect("solver registry poisoned").values().map(Vec::len).sum()
    }

    /// Whether the registry holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mna::SolverBackend;
    use crate::netlist::{inverter_chain, rc_ladder};

    #[test]
    fn same_topology_shares_one_pool() {
        let registry = SolverRegistry::new();
        let options = NewtonOptions::default();
        let a = registry.pool_for(&inverter_chain(8), options).unwrap();
        let b = registry.pool_for(&inverter_chain(8), options).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "one topology must resolve to one shared pool");
        assert_eq!((registry.primes(), registry.hits()), (1, 1));
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn distinct_topologies_and_options_get_distinct_pools() {
        let registry = SolverRegistry::new();
        let options = NewtonOptions::default();
        let chain = registry.pool_for(&inverter_chain(8), options).unwrap();
        let ladder = registry.pool_for(&rc_ladder(8, 1e3, 1e-12), options).unwrap();
        assert!(!Arc::ptr_eq(&chain, &ladder));
        // Same topology under different options is a different prime:
        // the options bake into the prototype.
        let sparse = registry
            .pool_for(
                &inverter_chain(8),
                NewtonOptions::default().with_backend(SolverBackend::Sparse),
            )
            .unwrap();
        assert!(!Arc::ptr_eq(&chain, &sparse));
        assert!(sparse.is_sparse() && !chain.is_sparse());
        assert_eq!(registry.primes(), 3);
        assert_eq!(registry.collisions(), 0, "distinct fingerprints are not collisions");
    }

    #[test]
    fn forced_fingerprint_clash_confirms_structure_and_never_aliases() {
        // Force two structurally different netlists into one bucket by
        // keying both under the same fingerprint: the confirm must refuse
        // to reuse the first entry, count a collision, and prime a
        // separate pool — silently aliasing the wrong symbolic analysis
        // is the failure mode this registry exists to rule out.
        let registry = SolverRegistry::new();
        let options = NewtonOptions::default();
        let forced_key = 0xdead_beef_cafe_f00d;
        let chain = registry.pool_for_keyed(forced_key, &inverter_chain(8), options).unwrap();
        let ladder =
            registry.pool_for_keyed(forced_key, &rc_ladder(8, 1e3, 1e-12), options).unwrap();
        assert!(!Arc::ptr_eq(&chain, &ladder), "collision must not alias pools");
        assert_eq!(registry.collisions(), 1);
        assert_eq!(registry.primes(), 2);
        assert_eq!(registry.len(), 2, "both entries live under one bucket");
        // Both entries stay individually reachable and confirmed.
        let chain2 = registry.pool_for_keyed(forced_key, &inverter_chain(8), options).unwrap();
        let ladder2 =
            registry.pool_for_keyed(forced_key, &rc_ladder(8, 1e3, 1e-12), options).unwrap();
        assert!(Arc::ptr_eq(&chain, &chain2));
        assert!(Arc::ptr_eq(&ladder, &ladder2));
        assert_eq!(registry.hits(), 2);
    }

    #[test]
    fn racing_cold_requests_prime_exactly_once() {
        let registry = SolverRegistry::new();
        let options = NewtonOptions::default();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    registry.pool_for(&inverter_chain(8), options).unwrap();
                });
            }
        });
        assert_eq!(registry.primes(), 1, "racing requesters must share one prime");
        assert_eq!(registry.hits(), 7);
    }

    #[test]
    fn lru_cap_bounds_entries_under_churn() {
        let registry = SolverRegistry::with_config(RegistryConfig::default().with_max_entries(4));
        let options = NewtonOptions::default();
        for i in 0..100 {
            registry.pool_for(&rc_ladder(2 + i, 1e3, 1e-12), options).unwrap();
            assert!(registry.len() <= 4, "cap must hold at every step");
        }
        assert_eq!(registry.len(), 4);
        assert_eq!(registry.evictions(), 96);
        assert_eq!(registry.primes(), 100);
    }

    #[test]
    fn lru_evicts_the_coldest_entry_first() {
        let registry = SolverRegistry::with_config(RegistryConfig::default().with_max_entries(2));
        let options = NewtonOptions::default();
        let a = registry.pool_for(&rc_ladder(2, 1e3, 1e-12), options).unwrap();
        registry.pool_for(&rc_ladder(3, 1e3, 1e-12), options).unwrap();
        // Touch `a` so the size-3 ladder becomes the LRU victim.
        let a2 = registry.pool_for(&rc_ladder(2, 1e3, 1e-12), options).unwrap();
        assert!(Arc::ptr_eq(&a, &a2));
        registry.pool_for(&rc_ladder(4, 1e3, 1e-12), options).unwrap();
        assert_eq!(registry.evictions(), 1);
        // `a` survived the eviction; the size-3 ladder did not.
        let a3 = registry.pool_for(&rc_ladder(2, 1e3, 1e-12), options).unwrap();
        assert!(Arc::ptr_eq(&a, &a3), "recently-used entry must survive");
        assert_eq!(registry.primes(), 3, "no re-prime for the surviving entry");
    }

    #[test]
    fn forced_expiry_reprimes_once_and_keeps_old_handles_alive() {
        let registry = SolverRegistry::new();
        let options = NewtonOptions::default();
        let old = registry.pool_for(&inverter_chain(8), options).unwrap();
        registry.force_expire_all();
        // The held Arc stays alive and usable across the eviction.
        let fresh = registry.pool_for(&inverter_chain(8), options).unwrap();
        assert!(!Arc::ptr_eq(&old, &fresh), "expired entry must re-prime, not alias");
        assert_eq!(registry.evictions(), 1);
        assert_eq!(registry.primes(), 2);
        old.with_solver(|s| s.solve().unwrap());
        fresh.with_solver(|s| s.solve().unwrap());
    }

    #[test]
    fn racing_requests_after_forced_expiry_reprime_exactly_once() {
        let registry = SolverRegistry::with_config(
            RegistryConfig::default().with_ttl(Duration::from_secs(3600)),
        );
        let options = NewtonOptions::default();
        let held = registry.pool_for(&inverter_chain(8), options).unwrap();
        registry.force_expire_all();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let pool = registry.pool_for(&inverter_chain(8), options).unwrap();
                    assert!(!Arc::ptr_eq(&held, &pool), "evicted pool must not be handed out");
                });
            }
        });
        assert_eq!(registry.primes(), 2, "one original prime + exactly one re-prime");
        assert_eq!(registry.evictions(), 1);
        assert_eq!(registry.len(), 1);
        // The racing holder's handle still works after all of it.
        held.with_solver(|s| s.solve().unwrap());
    }

    #[test]
    fn singular_netlist_registers_nothing() {
        // Two voltage sources across the same node pair duplicate the
        // branch rows — singular regardless of `gmin` regularization.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V1", a, crate::netlist::GROUND, 1.0);
        nl.vsource("V2", a, crate::netlist::GROUND, 2.0);
        let registry = SolverRegistry::new();
        assert!(registry.pool_for(&nl, NewtonOptions::default()).is_err());
        assert!(registry.is_empty());
        assert_eq!(registry.primes(), 0);
    }
}
