//! The ensemble-based critic (paper §IV.B).
//!
//! Modeling true worst-case reliability bounds would need >1000 MC samples
//! per iteration; instead GLOVA trains an ensemble of base models on the
//! few (`N' = 2–5`) sampled worst cases and uses the ensemble spread as an
//! epistemic-uncertainty proxy:
//!
//! ```text
//! Q(x) = E[Q_i(x)] + β₁ · σ[Q_i(x)],   β₁ < 0  (risk avoidance)
//! ```
//!
//! Each base model trains on its own independently drawn batch, so the
//! ensemble retains diversity ("randomness and varying initialization").

use glova_nn::{Activation, Adam, Gradients, Mlp, MlpConfig};
use rand::Rng;

/// Ensemble critic with the risk-sensitive aggregation of Eq. 6.
#[derive(Debug, Clone)]
pub struct EnsembleCritic {
    bases: Vec<Mlp>,
    optimizers: Vec<Adam>,
    beta1: f64,
    bias: f64,
}

impl EnsembleCritic {
    /// Creates an ensemble of `ensemble_size` base models for designs of
    /// dimension `input_dim`.
    ///
    /// `beta1` is the risk parameter of Eq. 6 (the paper uses −3);
    /// `bias` is the constant reward offset of Algorithm 1's losses
    /// (see `DESIGN.md` §5, default 0).
    ///
    /// # Panics
    ///
    /// Panics if `ensemble_size == 0` or `input_dim == 0`.
    pub fn new<R: Rng + ?Sized>(
        input_dim: usize,
        ensemble_size: usize,
        hidden: &[usize],
        beta1: f64,
        learning_rate: f64,
        bias: f64,
        rng: &mut R,
    ) -> Self {
        assert!(ensemble_size > 0, "ensemble must have at least one base model");
        let config = MlpConfig::new(input_dim, hidden, 1, Activation::Relu);
        let bases: Vec<Mlp> = (0..ensemble_size).map(|_| Mlp::new(&config, rng)).collect();
        let optimizers = (0..ensemble_size).map(|_| Adam::new(learning_rate)).collect();
        Self { bases, optimizers, beta1, bias }
    }

    /// Number of base models.
    pub fn ensemble_size(&self) -> usize {
        self.bases.len()
    }

    /// The risk parameter β₁.
    pub fn beta1(&self) -> f64 {
        self.beta1
    }

    /// Raw base-model predictions at `x`.
    pub fn base_predictions(&self, x: &[f64]) -> Vec<f64> {
        self.bases.iter().map(|b| b.forward(x)[0] + self.bias).collect()
    }

    /// Ensemble mean and (population) standard deviation at `x`.
    pub fn predict_detail(&self, x: &[f64]) -> (f64, f64) {
        let preds = self.base_predictions(x);
        let stats: glova_stats::descriptive::RunningStats = preds.into_iter().collect();
        (stats.mean(), stats.std_dev())
    }

    /// The design reliability bound `Q(x) = E[Q_i] + β₁σ[Q_i]` (Eq. 6).
    pub fn predict(&self, x: &[f64]) -> f64 {
        let (mean, std) = self.predict_detail(x);
        mean + self.beta1 * std
    }

    /// Exact gradient `∂Q/∂x` of the risk-sensitive aggregate.
    ///
    /// With `µ = Σ Q_i/n` and `σ = √(Σ(Q_i−µ)²/n)`:
    /// `∂Q/∂Q_i = 1/n + β₁(Q_i − µ)/(nσ)`, then chained through each base
    /// model's input gradient. The σ-term is dropped when σ ≈ 0
    /// (subgradient at the non-differentiable point).
    pub fn input_gradient(&self, x: &[f64]) -> Vec<f64> {
        let n = self.bases.len() as f64;
        let preds = self.base_predictions(x);
        let mean = preds.iter().sum::<f64>() / n;
        let var = preds.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / n;
        let std = var.sqrt();

        let mut grad = vec![0.0; x.len()];
        for (base, &pred) in self.bases.iter().zip(&preds) {
            let mut weight = 1.0 / n;
            if std > 1e-12 {
                weight += self.beta1 * (pred - mean) / (n * std);
            }
            let (_, cache) = base.forward_cached(x);
            let (_, g_in) = base.backward(&cache, &[weight]);
            for (g, gi) in grad.iter_mut().zip(&g_in) {
                *g += gi;
            }
        }
        grad
    }

    /// One training step: base model `i` regresses its own batch
    /// `(x̂, r̂)` with the loss `MSE(r̂, Q_i(x̂) + bias)` (Algorithm 1).
    ///
    /// `batches` must contain one batch per base model; empty batches are
    /// skipped.
    ///
    /// # Panics
    ///
    /// Panics if `batches.len() != ensemble_size()`.
    pub fn train_batches(&mut self, batches: &[Vec<(&[f64], f64)>]) {
        assert_eq!(batches.len(), self.bases.len(), "need one batch per base model");
        for ((base, opt), batch) in self.bases.iter_mut().zip(&mut self.optimizers).zip(batches) {
            if batch.is_empty() {
                continue;
            }
            let mut total = Gradients::zeros_like(base);
            for (x, r) in batch {
                let (out, cache) = base.forward_cached(x);
                let pred = out[0] + self.bias;
                let grad_out = vec![2.0 * (pred - r) / batch.len() as f64];
                let (g, _) = base.backward(&cache, &grad_out);
                total.accumulate(&g);
            }
            total.clip_global_norm(10.0);
            opt.step(base, &total);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glova_stats::rng::seeded;

    fn small_critic(seed: u64, ensemble: usize, beta1: f64) -> EnsembleCritic {
        let mut rng = seeded(seed);
        EnsembleCritic::new(2, ensemble, &[16, 16], beta1, 1e-2, 0.0, &mut rng)
    }

    #[test]
    fn single_model_has_zero_spread() {
        let critic = small_critic(1, 1, -3.0);
        let (_, std) = critic.predict_detail(&[0.3, 0.7]);
        assert_eq!(std, 0.0);
        // And predict == mean (risk term inactive).
        let (mean, _) = critic.predict_detail(&[0.3, 0.7]);
        assert_eq!(critic.predict(&[0.3, 0.7]), mean);
    }

    #[test]
    fn negative_beta_lowers_bound_under_disagreement() {
        let critic = small_critic(2, 5, -3.0);
        let x = [0.2, 0.8];
        let (mean, std) = critic.predict_detail(&x);
        assert!(std > 0.0, "fresh ensemble should disagree");
        assert!(critic.predict(&x) < mean);
    }

    #[test]
    fn training_fits_target_function_and_shrinks_spread() {
        let mut rng = seeded(3);
        let mut critic = small_critic(4, 5, -3.0);
        // Target: r(x) = x0 - x1.
        let xs: Vec<Vec<f64>> = (0..50).map(|_| vec![rng.gen::<f64>(), rng.gen::<f64>()]).collect();
        let spread_before: f64 = xs.iter().map(|x| critic.predict_detail(x).1).sum::<f64>();
        for _ in 0..300 {
            let batches: Vec<Vec<(&[f64], f64)>> = (0..5)
                .map(|_| {
                    (0..10)
                        .map(|_| {
                            let i = rng.gen_range(0..xs.len());
                            (xs[i].as_slice(), xs[i][0] - xs[i][1])
                        })
                        .collect()
                })
                .collect();
            critic.train_batches(&batches);
        }
        let mut max_err = 0.0f64;
        let mut spread_after = 0.0;
        for x in &xs {
            let (mean, std) = critic.predict_detail(x);
            max_err = max_err.max((mean - (x[0] - x[1])).abs());
            spread_after += std;
        }
        assert!(max_err < 0.15, "critic did not fit: max err {max_err}");
        assert!(
            spread_after < spread_before,
            "spread should shrink with data: {spread_after} vs {spread_before}"
        );
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let critic = small_critic(5, 4, -2.0);
        let x = [0.4, 0.6];
        let grad = critic.input_gradient(&x);
        let eps = 1e-6;
        for d in 0..2 {
            let mut xp = x;
            let mut xm = x;
            xp[d] += eps;
            xm[d] -= eps;
            let numeric = (critic.predict(&xp) - critic.predict(&xm)) / (2.0 * eps);
            assert!(
                (numeric - grad[d]).abs() < 1e-4,
                "dim {d}: numeric {numeric} vs analytic {}",
                grad[d]
            );
        }
    }

    #[test]
    fn bias_offsets_predictions() {
        let mut rng = seeded(6);
        let c0 = EnsembleCritic::new(2, 3, &[8], -1.0, 1e-3, 0.0, &mut rng);
        let mut rng = seeded(6);
        let c1 = EnsembleCritic::new(2, 3, &[8], -1.0, 1e-3, 0.5, &mut rng);
        let x = [0.5, 0.5];
        let (m0, s0) = c0.predict_detail(&x);
        let (m1, s1) = c1.predict_detail(&x);
        assert!((m1 - m0 - 0.5).abs() < 1e-12);
        assert!((s1 - s0).abs() < 1e-12, "bias must not change spread");
    }

    #[test]
    #[should_panic(expected = "one batch per base model")]
    fn wrong_batch_count_panics() {
        let mut critic = small_critic(7, 3, -1.0);
        critic.train_batches(&[]);
    }
}
