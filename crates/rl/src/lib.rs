//! Risk-sensitive reinforcement learning for analog sizing — the paper's
//! Algorithm 1.
//!
//! The agent is DDPG-derived but specialized to the sizing setting:
//!
//! - The **actor** maps the previous normalized design vector to the next
//!   one (a learned local-search step), with a sigmoid head keeping outputs
//!   in `[0, 1]^p`.
//! - The **critic** is an *ensemble* of base models predicting the
//!   worst-case reward of a design. Its risk-sensitive aggregate
//!   `Q = E[Q_i] + β₁·σ[Q_i]` with `β₁ < 0` (paper Eq. 6) estimates the
//!   *design reliability bound*: when the ensemble disagrees (high
//!   epistemic uncertainty from few worst-case samples), the bound drops,
//!   steering the actor away from designs whose robustness is unproven.
//! - Only the **worst-case reward** across the sampled PVT/mismatch
//!   conditions is stored in the replay buffer ([`WorstCaseReplayBuffer`]).
//! - A [`LastWorstBuffer`] tracks the most recent worst reward per corner,
//!   used to pick the worst corner for the next iteration's simulations.
//!
//! # Example
//!
//! ```
//! use glova_rl::{AgentConfig, RiskSensitiveAgent};
//!
//! let mut rng = glova_stats::rng::seeded(0);
//! let mut agent = RiskSensitiveAgent::new(AgentConfig::new(4), &mut rng);
//! // Seed the buffer with a few (design, worst reward) observations …
//! agent.observe(vec![0.2, 0.2, 0.2, 0.2], -0.5);
//! agent.observe(vec![0.7, 0.3, 0.5, 0.6], 0.2);
//! // … train and propose the next design.
//! agent.train_step(&mut rng);
//! let next = agent.propose(&[0.7, 0.3, 0.5, 0.6], &mut rng);
//! assert_eq!(next.len(), 4);
//! assert!(next.iter().all(|v| (0.0..=1.0).contains(v)));
//! ```

#![warn(missing_docs)]

pub mod agent;
pub mod critic;
pub mod noise;
pub mod replay;

pub use agent::{AgentConfig, RiskSensitiveAgent};
pub use critic::EnsembleCritic;
pub use noise::{GaussianNoise, OrnsteinUhlenbeckNoise};
pub use replay::{LastWorstBuffer, WorstCaseReplayBuffer};
