//! Replay buffers specialized to worst-case training data.

use rand::Rng;

/// Replay buffer of `(design, worst-case reward)` pairs — the paper's
/// `B_worst`.
///
/// Per Algorithm 1, only the worst reward across the `N'` sampled
/// variation conditions of an iteration is stored.
#[derive(Debug, Clone, Default)]
pub struct WorstCaseReplayBuffer {
    designs: Vec<Vec<f64>>,
    rewards: Vec<f64>,
    capacity: Option<usize>,
}

impl WorstCaseReplayBuffer {
    /// Creates an unbounded buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a buffer that keeps only the most recent `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_capacity_limit(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self { designs: Vec::new(), rewards: Vec::new(), capacity: Some(capacity) }
    }

    /// Stores one `(design, worst reward)` pair.
    pub fn push(&mut self, design: Vec<f64>, worst_reward: f64) {
        self.designs.push(design);
        self.rewards.push(worst_reward);
        if let Some(cap) = self.capacity {
            if self.designs.len() > cap {
                self.designs.remove(0);
                self.rewards.remove(0);
            }
        }
    }

    /// Number of stored pairs.
    pub fn len(&self) -> usize {
        self.designs.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.designs.is_empty()
    }

    /// Samples `batch` pairs with replacement; returns `(designs, rewards)`
    /// views. Empty when the buffer is empty.
    pub fn sample<R: Rng + ?Sized>(&self, batch: usize, rng: &mut R) -> Vec<(&[f64], f64)> {
        if self.is_empty() {
            return Vec::new();
        }
        (0..batch)
            .map(|_| {
                let i = rng.gen_range(0..self.designs.len());
                (self.designs[i].as_slice(), self.rewards[i])
            })
            .collect()
    }

    /// The stored entry with the highest worst-case reward, if any.
    pub fn best(&self) -> Option<(&[f64], f64)> {
        self.rewards
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("rewards are finite"))
            .map(|(i, &r)| (self.designs[i].as_slice(), r))
    }
}

/// Tracks the most recent worst-case reward seen at each corner — the
/// paper's "last worst-case buffer", used both to select the worst corner
/// during optimization and to order corners in verification (Alg. 2).
#[derive(Debug, Clone)]
pub struct LastWorstBuffer {
    rewards: Vec<f64>,
}

impl LastWorstBuffer {
    /// Creates a buffer for `n_corners` corners, all initialized to the
    /// pessimistic `-∞`-like sentinel so unvisited corners sort worst.
    ///
    /// # Panics
    ///
    /// Panics if `n_corners == 0`.
    pub fn new(n_corners: usize) -> Self {
        assert!(n_corners > 0, "need at least one corner");
        Self { rewards: vec![f64::NEG_INFINITY; n_corners] }
    }

    /// Number of tracked corners.
    pub fn len(&self) -> usize {
        self.rewards.len()
    }

    /// Whether no corners are tracked (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.rewards.is_empty()
    }

    /// Records the latest worst reward observed at `corner`.
    ///
    /// # Panics
    ///
    /// Panics if `corner` is out of range.
    pub fn record(&mut self, corner: usize, worst_reward: f64) {
        self.rewards[corner] = worst_reward;
    }

    /// Last worst reward of `corner` (`-∞` if never recorded).
    pub fn last(&self, corner: usize) -> f64 {
        self.rewards[corner]
    }

    /// The corner with the lowest last worst-case reward (ties → lowest
    /// index, deterministic).
    pub fn worst_corner(&self) -> usize {
        let mut best_idx = 0;
        let mut best_val = f64::INFINITY;
        for (i, &r) in self.rewards.iter().enumerate() {
            if r < best_val {
                best_val = r;
                best_idx = i;
            }
        }
        best_idx
    }

    /// Corner indices sorted worst-first (ascending last reward, ties by
    /// index).
    pub fn corners_worst_first(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.rewards.len()).collect();
        order.sort_by(|&a, &b| {
            self.rewards[a]
                .partial_cmp(&self.rewards[b])
                .expect("rewards are comparable")
                .then(a.cmp(&b))
        });
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glova_stats::rng::seeded;

    #[test]
    fn push_and_sample() {
        let mut buf = WorstCaseReplayBuffer::new();
        buf.push(vec![0.1, 0.2], -1.0);
        buf.push(vec![0.3, 0.4], 0.2);
        assert_eq!(buf.len(), 2);
        let mut rng = seeded(1);
        let batch = buf.sample(10, &mut rng);
        assert_eq!(batch.len(), 10);
        assert!(batch.iter().all(|(x, _)| x.len() == 2));
    }

    #[test]
    fn empty_sample_is_empty() {
        let buf = WorstCaseReplayBuffer::new();
        let mut rng = seeded(2);
        assert!(buf.sample(5, &mut rng).is_empty());
        assert!(buf.best().is_none());
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut buf = WorstCaseReplayBuffer::with_capacity_limit(2);
        buf.push(vec![1.0], 1.0);
        buf.push(vec![2.0], 2.0);
        buf.push(vec![3.0], 3.0);
        assert_eq!(buf.len(), 2);
        let mut rng = seeded(3);
        let batch = buf.sample(20, &mut rng);
        assert!(batch.iter().all(|(x, _)| x[0] >= 2.0), "old entry not evicted");
    }

    #[test]
    fn best_returns_max_reward() {
        let mut buf = WorstCaseReplayBuffer::new();
        buf.push(vec![1.0], -0.5);
        buf.push(vec![2.0], 0.2);
        buf.push(vec![3.0], -0.1);
        let (x, r) = buf.best().unwrap();
        assert_eq!(r, 0.2);
        assert_eq!(x, &[2.0]);
    }

    #[test]
    fn last_worst_tracks_minimum() {
        let mut lw = LastWorstBuffer::new(3);
        assert_eq!(lw.worst_corner(), 0); // all -inf, ties → 0
        lw.record(0, 0.2);
        lw.record(1, -0.7);
        lw.record(2, 0.1);
        assert_eq!(lw.worst_corner(), 1);
        assert_eq!(lw.corners_worst_first(), vec![1, 2, 0]);
    }

    #[test]
    fn unvisited_corners_sort_first() {
        let mut lw = LastWorstBuffer::new(3);
        lw.record(0, 0.2);
        // Corners 1 and 2 unvisited (−∞): they must come first.
        let order = lw.corners_worst_first();
        assert_eq!(order[2], 0);
    }

    #[test]
    #[should_panic(expected = "at least one corner")]
    fn zero_corners_panics() {
        LastWorstBuffer::new(0);
    }
}
