//! Exploration noise.

use glova_stats::normal::StandardNormal;
use rand::Rng;

/// Gaussian exploration noise with multiplicative decay — added to the
/// actor's proposal in Algorithm 1 (`x_new = A(x_last) + noise`).
#[derive(Debug, Clone)]
pub struct GaussianNoise {
    sigma: f64,
    sigma_min: f64,
    decay: f64,
    normal: StandardNormal,
}

impl GaussianNoise {
    /// Creates noise with initial `sigma`, decaying by `decay` per call to
    /// [`GaussianNoise::step`] down to `sigma_min`.
    ///
    /// # Panics
    ///
    /// Panics if parameters are not in range (`sigma ≥ sigma_min ≥ 0`,
    /// `0 < decay ≤ 1`).
    pub fn new(sigma: f64, sigma_min: f64, decay: f64) -> Self {
        assert!(sigma >= sigma_min && sigma_min >= 0.0, "sigma ordering invalid");
        assert!(decay > 0.0 && decay <= 1.0, "decay must be in (0, 1]");
        Self { sigma, sigma_min, decay, normal: StandardNormal::new() }
    }

    /// Standard sizing-exploration defaults: σ 0.12 → 0.03, decay 0.985.
    pub fn standard() -> Self {
        Self::new(0.12, 0.03, 0.985)
    }

    /// Current standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Resets σ to `sigma` (exploration restart after stagnation).
    pub fn reset(&mut self, sigma: f64) {
        self.sigma = sigma.max(self.sigma_min);
    }

    /// Applies noise to a design in place, clamping to `[0, 1]`.
    pub fn perturb<R: Rng + ?Sized>(&self, design: &mut [f64], rng: &mut R) {
        for v in design.iter_mut() {
            *v = (*v + self.normal.sample_scaled(rng, 0.0, self.sigma)).clamp(0.0, 1.0);
        }
    }

    /// Decays the noise level one step.
    pub fn step(&mut self) {
        self.sigma = (self.sigma * self.decay).max(self.sigma_min);
    }
}

/// Ornstein–Uhlenbeck exploration noise — temporally correlated, the
/// classic DDPG choice. Where [`GaussianNoise`] jumps independently each
/// call, OU noise drifts smoothly, which explores narrow feasibility
/// corridors (like the DRAM boost/energy ridge) more coherently.
#[derive(Debug, Clone)]
pub struct OrnsteinUhlenbeckNoise {
    theta: f64,
    sigma: f64,
    state: Vec<f64>,
    normal: StandardNormal,
}

impl OrnsteinUhlenbeckNoise {
    /// Creates OU noise over `dim` dimensions with mean-reversion rate
    /// `theta` and diffusion `sigma` (per step).
    ///
    /// # Panics
    ///
    /// Panics if `theta` is outside `(0, 1]` or `sigma < 0`.
    pub fn new(dim: usize, theta: f64, sigma: f64) -> Self {
        assert!(theta > 0.0 && theta <= 1.0, "theta must be in (0, 1]");
        assert!(sigma >= 0.0, "sigma must be non-negative");
        Self { theta, sigma, state: vec![0.0; dim], normal: StandardNormal::new() }
    }

    /// The current noise state.
    pub fn state(&self) -> &[f64] {
        &self.state
    }

    /// Advances the process one step and applies it to `design` in place,
    /// clamping to `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `design.len()` differs from the noise dimension.
    pub fn perturb<R: Rng + ?Sized>(&mut self, design: &mut [f64], rng: &mut R) {
        assert_eq!(design.len(), self.state.len(), "dimension mismatch");
        for (s, v) in self.state.iter_mut().zip(design.iter_mut()) {
            *s += self.theta * (0.0 - *s) + self.normal.sample_scaled(rng, 0.0, self.sigma);
            *v = (*v + *s).clamp(0.0, 1.0);
        }
    }

    /// Resets the process state to zero.
    pub fn reset(&mut self) {
        self.state.iter_mut().for_each(|s| *s = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glova_stats::rng::seeded;

    #[test]
    fn perturb_stays_in_unit_cube() {
        let noise = GaussianNoise::new(0.5, 0.1, 0.9);
        let mut rng = seeded(1);
        for _ in 0..100 {
            let mut x = vec![0.05, 0.95, 0.5];
            noise.perturb(&mut x, &mut rng);
            assert!(x.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn decay_reaches_floor() {
        let mut noise = GaussianNoise::new(0.2, 0.05, 0.5);
        for _ in 0..20 {
            noise.step();
        }
        assert_eq!(noise.sigma(), 0.05);
    }

    #[test]
    fn noise_actually_perturbs() {
        let noise = GaussianNoise::standard();
        let mut rng = seeded(2);
        let mut x = vec![0.5; 8];
        noise.perturb(&mut x, &mut rng);
        assert!(x.iter().any(|&v| (v - 0.5).abs() > 1e-6));
    }

    #[test]
    #[should_panic(expected = "decay must be in")]
    fn bad_decay_panics() {
        GaussianNoise::new(0.1, 0.0, 0.0);
    }

    #[test]
    fn ou_noise_is_temporally_correlated() {
        // Consecutive OU states must correlate far more than independent
        // Gaussian draws.
        let mut ou = OrnsteinUhlenbeckNoise::new(1, 0.1, 0.05);
        let mut rng = seeded(5);
        let mut prev = 0.0;
        let mut states = Vec::new();
        for _ in 0..2000 {
            let mut x = vec![0.5];
            ou.perturb(&mut x, &mut rng);
            states.push((prev, ou.state()[0]));
            prev = ou.state()[0];
        }
        let a: Vec<f64> = states.iter().skip(1).map(|p| p.0).collect();
        let b: Vec<f64> = states.iter().skip(1).map(|p| p.1).collect();
        let rho = glova_stats::correlation::pearson(&a, &b);
        assert!(rho > 0.7, "OU autocorrelation too low: {rho}");
    }

    #[test]
    fn ou_noise_reverts_to_zero_mean() {
        let mut ou = OrnsteinUhlenbeckNoise::new(4, 0.15, 0.02);
        let mut rng = seeded(6);
        let mut acc = 0.0;
        let n = 5000;
        for _ in 0..n {
            let mut x = vec![0.5; 4];
            ou.perturb(&mut x, &mut rng);
            acc += ou.state().iter().sum::<f64>() / 4.0;
        }
        assert!((acc / n as f64).abs() < 0.02, "OU mean drifted: {}", acc / n as f64);
    }

    #[test]
    fn ou_reset_clears_state() {
        let mut ou = OrnsteinUhlenbeckNoise::new(2, 0.1, 0.1);
        let mut rng = seeded(7);
        let mut x = vec![0.5; 2];
        ou.perturb(&mut x, &mut rng);
        assert!(ou.state().iter().any(|&s| s != 0.0));
        ou.reset();
        assert!(ou.state().iter().all(|&s| s == 0.0));
    }

    #[test]
    fn ou_perturb_stays_in_unit_cube() {
        let mut ou = OrnsteinUhlenbeckNoise::new(3, 0.05, 0.3);
        let mut rng = seeded(8);
        for _ in 0..200 {
            let mut x = vec![0.02, 0.98, 0.5];
            ou.perturb(&mut x, &mut rng);
            assert!(x.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    #[should_panic(expected = "theta must be in")]
    fn ou_bad_theta_panics() {
        OrnsteinUhlenbeckNoise::new(2, 0.0, 0.1);
    }
}
