//! The risk-sensitive agent — Algorithm 1 of the paper.

use crate::critic::EnsembleCritic;
use crate::noise::GaussianNoise;
use crate::replay::WorstCaseReplayBuffer;
use glova_nn::{Activation, Adam, Gradients, Mlp, MlpConfig};
use rand::Rng;

/// Reward target for the actor loss `MSE(0.2, Q(A(x̂)))` (paper Eq. 4).
pub const SATISFIED_REWARD: f64 = 0.2;

/// Agent hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentConfig {
    /// Design-space dimension `p` — the actor's *action* width.
    pub dim: usize,
    /// Width of the goal vector appended to every observation (PPAAS-style
    /// goal conditioning; 0 disables it). With `goal_dim > 0` the actor and
    /// critic take `dim + goal_dim` inputs — the design followed by the
    /// spec-target encoding — while the actor still outputs `dim` values,
    /// so one trained agent serves a family of spec targets.
    pub goal_dim: usize,
    /// Number of critic base models (1 disables the ensemble — the
    /// "w/o EC" ablation of Table III).
    pub ensemble_size: usize,
    /// Risk parameter β₁ of Eq. 6 (paper: −3).
    pub beta1: f64,
    /// Training batch size (paper: 10).
    pub batch_size: usize,
    /// Hidden widths of both networks (4-layer nets per the paper).
    pub hidden: Vec<usize>,
    /// Actor learning rate.
    pub actor_lr: f64,
    /// Critic learning rate.
    pub critic_lr: f64,
    /// Gradient steps per [`RiskSensitiveAgent::train_step`] call.
    pub updates_per_step: usize,
    /// Constant reward offset in Algorithm 1's losses.
    pub bias: f64,
    /// Weight of the DDPG-style critic-through gradient in the actor loss.
    pub ddpg_weight: f64,
    /// Weight of the proximal behaviour-cloning term pulling `A(x̂)`
    /// toward the incumbent target (see
    /// [`RiskSensitiveAgent::set_proximal_target`]). Stabilizes the actor
    /// against critic-extrapolation artifacts early in training.
    pub proximal_weight: f64,
}

impl AgentConfig {
    /// Paper-default configuration for a `dim`-dimensional problem.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self {
            dim,
            goal_dim: 0,
            ensemble_size: 5,
            beta1: -3.0,
            batch_size: 10,
            hidden: vec![64, 64, 64],
            actor_lr: 3e-4,
            critic_lr: 1e-3,
            updates_per_step: 8,
            bias: 0.0,
            ddpg_weight: 0.2,
            proximal_weight: 1.0,
        }
    }

    /// Disables the ensemble (single base model, risk-neutral) — the
    /// Table III "w/o EC" ablation.
    pub fn without_ensemble(mut self) -> Self {
        self.ensemble_size = 1;
        self
    }

    /// Enables goal conditioning with a `goal_dim`-wide spec-target
    /// encoding appended to every observation (builder style).
    pub fn with_goal_dim(mut self, goal_dim: usize) -> Self {
        self.goal_dim = goal_dim;
        self
    }

    /// Observation width `dim + goal_dim` — what [`RiskSensitiveAgent::observe`]
    /// and [`RiskSensitiveAgent::propose`] expect.
    pub fn obs_dim(&self) -> usize {
        self.dim + self.goal_dim
    }
}

/// The risk-sensitive RL agent: actor, ensemble critic, worst-case replay
/// buffer and exploration noise.
#[derive(Debug, Clone)]
pub struct RiskSensitiveAgent {
    config: AgentConfig,
    actor: Mlp,
    actor_opt: Adam,
    critic: EnsembleCritic,
    buffer: WorstCaseReplayBuffer,
    noise: GaussianNoise,
    proximal_target: Option<Vec<f64>>,
}

impl RiskSensitiveAgent {
    /// Creates an agent with freshly initialized networks.
    ///
    /// With `config.goal_dim > 0` both networks take the full
    /// `dim + goal_dim` observation (design ++ goal encoding); the actor's
    /// output stays `dim`-wide.
    pub fn new<R: Rng + ?Sized>(config: AgentConfig, rng: &mut R) -> Self {
        let actor_cfg =
            MlpConfig::new(config.obs_dim(), &config.hidden, config.dim, Activation::Relu)
                .with_output_activation(Activation::Sigmoid);
        let actor = Mlp::new(&actor_cfg, rng);
        let critic = EnsembleCritic::new(
            config.obs_dim(),
            config.ensemble_size,
            &config.hidden,
            config.beta1,
            config.critic_lr,
            config.bias,
            rng,
        );
        Self {
            actor,
            actor_opt: Adam::new(config.actor_lr),
            critic,
            buffer: WorstCaseReplayBuffer::new(),
            noise: GaussianNoise::standard(),
            proximal_target: None,
            config,
        }
    }

    /// Restarts exploration at the given σ (stagnation recovery).
    pub fn reset_noise(&mut self, sigma: f64) {
        self.noise.reset(sigma);
    }

    /// Sets (or clears) the proximal behaviour-cloning target — typically
    /// the incumbent best design, refreshed every iteration.
    ///
    /// # Panics
    ///
    /// Panics if the target dimension is wrong.
    pub fn set_proximal_target(&mut self, target: Option<Vec<f64>>) {
        if let Some(t) = &target {
            assert_eq!(t.len(), self.config.dim, "target dimension mismatch");
        }
        self.proximal_target = target;
    }

    /// The agent's configuration.
    pub fn config(&self) -> &AgentConfig {
        &self.config
    }

    /// The critic (read access for reliability-bound tracing, Fig. 3).
    pub fn critic(&self) -> &EnsembleCritic {
        &self.critic
    }

    /// The replay buffer.
    pub fn buffer(&self) -> &WorstCaseReplayBuffer {
        &self.buffer
    }

    /// Stores an `(observation, worst-case reward)` pair (Algorithm 1's
    /// "store the data in B_worst").
    ///
    /// Without goal conditioning the observation is the design itself; with
    /// `goal_dim > 0` it is the design with the goal encoding appended
    /// (see [`AgentConfig::obs_dim`]).
    ///
    /// # Panics
    ///
    /// Panics if the observation dimension is wrong.
    pub fn observe(&mut self, observation: Vec<f64>, worst_reward: f64) {
        assert_eq!(observation.len(), self.config.obs_dim(), "observation dimension mismatch");
        self.buffer.push(observation, worst_reward);
    }

    /// Proposes the next design from the last observation:
    /// `A(x_last) + noise`, clamped to the unit cube. The returned action
    /// is always `dim`-wide (the goal suffix, if any, is input-only).
    pub fn propose<R: Rng + ?Sized>(&self, x_last: &[f64], rng: &mut R) -> Vec<f64> {
        assert_eq!(x_last.len(), self.config.obs_dim(), "observation dimension mismatch");
        let mut next = self.actor.forward(x_last);
        self.noise.perturb(&mut next, rng);
        next
    }

    /// Runs `updates_per_step` critic+actor gradient steps on replayed
    /// worst-case data, then decays the exploration noise.
    ///
    /// No-op when the buffer is empty.
    pub fn train_step<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        if self.buffer.is_empty() {
            return;
        }
        for _ in 0..self.config.updates_per_step {
            // Critic: one independent batch per base model.
            let batches: Vec<Vec<(&[f64], f64)>> = (0..self.critic.ensemble_size())
                .map(|_| self.buffer.sample(self.config.batch_size, rng))
                .collect();
            self.critic.train_batches(&batches);

            // Actor: minimize MSE(0.2, Q(A(x̂))) (Algorithm 1) plus the
            // proximal cloning term toward the incumbent.
            let batch = self.buffer.sample(self.config.batch_size, rng);
            let mut total = Gradients::zeros_like(&self.actor);
            for (x, _) in &batch {
                let (action, cache) = self.actor.forward_cached(x);
                // The critic scores the proposed action under the same goal
                // as the replayed observation; the goal suffix is a constant
                // input, so only the action components of ∂Q/∂input flow
                // back through the actor.
                let critic_in: Vec<f64> =
                    action.iter().chain(x[self.config.dim..].iter()).copied().collect();
                let q = self.critic.predict(&critic_in);
                let dq_da = self.critic.input_gradient(&critic_in);
                let dl_dq =
                    self.config.ddpg_weight * 2.0 * (q - SATISFIED_REWARD) / batch.len() as f64;
                let mut grad_out: Vec<f64> =
                    dq_da[..self.config.dim].iter().map(|g| dl_dq * g).collect();
                if let Some(target) = &self.proximal_target {
                    for ((g, a), t) in grad_out.iter_mut().zip(&action).zip(target) {
                        *g += self.config.proximal_weight * 2.0 * (a - t) / batch.len() as f64;
                    }
                }
                let (g, _) = self.actor.backward(&cache, &grad_out);
                total.accumulate(&g);
            }
            total.clip_global_norm(5.0);
            self.actor_opt.step(&mut self.actor, &total);
        }
        self.noise.step();
    }

    /// The best stored observation by worst-case reward, if any.
    ///
    /// With goal conditioning the observation carries the goal suffix; the
    /// design part is the leading `config.dim` components.
    pub fn best_design(&self) -> Option<(&[f64], f64)> {
        self.buffer.best()
    }

    /// Warm-starts the actor by behaviour cloning: `steps` gradient steps
    /// of `‖A(x̂) − target‖²` over designs replayed from the buffer.
    ///
    /// A freshly initialized actor maps every input to its own arbitrary
    /// fixed point; cloning toward the incumbent best design puts the
    /// proposal distribution in a sane region before critic-driven updates
    /// take over. No-op when the buffer is empty.
    pub fn pretrain_actor_towards<R: Rng + ?Sized>(
        &mut self,
        target: &[f64],
        steps: usize,
        rng: &mut R,
    ) {
        assert_eq!(target.len(), self.config.dim, "target dimension mismatch");
        if self.buffer.is_empty() {
            return;
        }
        for _ in 0..steps {
            let batch = self.buffer.sample(self.config.batch_size, rng);
            let mut total = Gradients::zeros_like(&self.actor);
            for (x, _) in &batch {
                let (action, cache) = self.actor.forward_cached(x);
                let grad_out: Vec<f64> = action
                    .iter()
                    .zip(target)
                    .map(|(a, t)| 2.0 * (a - t) / batch.len() as f64)
                    .collect();
                let (g, _) = self.actor.backward(&cache, &grad_out);
                total.accumulate(&g);
            }
            total.clip_global_norm(5.0);
            self.actor_opt.step(&mut self.actor, &total);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glova_stats::rng::seeded;

    /// Synthetic worst-case reward: feasible ball of radius 0.25 around a
    /// known optimum; outside the ball, negative distance margin.
    fn toy_reward(x: &[f64]) -> f64 {
        let optimum = [0.65, 0.35, 0.55];
        let dist: f64 = x.iter().zip(&optimum).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
        if dist < 0.25 {
            SATISFIED_REWARD
        } else {
            -(dist - 0.25)
        }
    }

    fn config() -> AgentConfig {
        AgentConfig { hidden: vec![32, 32], updates_per_step: 4, ..AgentConfig::new(3) }
    }

    #[test]
    fn agent_improves_worst_case_reward() {
        let mut rng = seeded(11);
        let mut agent = RiskSensitiveAgent::new(config(), &mut rng);
        // Seed with mediocre random designs.
        let mut x = vec![0.1, 0.9, 0.1];
        let initial_reward = toy_reward(&x);
        agent.observe(x.clone(), initial_reward);
        let mut best = initial_reward;
        for _ in 0..60 {
            agent.train_step(&mut rng);
            let next = agent.propose(&x, &mut rng);
            let r = toy_reward(&next);
            agent.observe(next.clone(), r);
            best = best.max(r);
            x = next;
            if best >= SATISFIED_REWARD {
                break;
            }
        }
        assert!(best > initial_reward + 0.2, "agent failed to improve: {initial_reward} -> {best}");
    }

    #[test]
    fn proposals_live_in_unit_cube() {
        let mut rng = seeded(12);
        let mut agent = RiskSensitiveAgent::new(config(), &mut rng);
        agent.observe(vec![0.5, 0.5, 0.5], -0.1);
        agent.train_step(&mut rng);
        for _ in 0..20 {
            let p = agent.propose(&[0.2, 0.8, 0.5], &mut rng);
            assert!(p.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn train_step_on_empty_buffer_is_noop() {
        let mut rng = seeded(13);
        let mut agent = RiskSensitiveAgent::new(config(), &mut rng);
        agent.train_step(&mut rng); // must not panic
        assert!(agent.best_design().is_none());
    }

    #[test]
    fn risk_sensitive_critic_is_conservative_on_sparse_data() {
        // With few observations, the ensemble bound must sit below the
        // ensemble mean at unexplored points (risk avoidance).
        let mut rng = seeded(14);
        let mut agent = RiskSensitiveAgent::new(config(), &mut rng);
        agent.observe(vec![0.6, 0.4, 0.5], 0.2);
        agent.observe(vec![0.2, 0.2, 0.2], -0.4);
        for _ in 0..10 {
            agent.train_step(&mut rng);
        }
        let unexplored = [0.95, 0.05, 0.95];
        let (mean, std) = agent.critic().predict_detail(&unexplored);
        assert!(std > 0.0);
        assert!(agent.critic().predict(&unexplored) < mean);
    }

    #[test]
    fn without_ensemble_ablation_is_risk_neutral() {
        let mut rng = seeded(15);
        let agent = RiskSensitiveAgent::new(config().without_ensemble(), &mut rng);
        let x = [0.3, 0.3, 0.3];
        let (mean, std) = agent.critic().predict_detail(&x);
        assert_eq!(std, 0.0);
        assert_eq!(agent.critic().predict(&x), mean);
    }

    #[test]
    fn goal_conditioned_agent_keeps_action_width() {
        let mut rng = seeded(21);
        let cfg = config().with_goal_dim(2);
        assert_eq!(cfg.obs_dim(), 5);
        let mut agent = RiskSensitiveAgent::new(cfg, &mut rng);
        // Observations carry the goal suffix; actions stay 3-wide.
        agent.observe(vec![0.2, 0.4, 0.6, 1.0, 0.8], -0.3);
        agent.observe(vec![0.6, 0.4, 0.5, 0.9, 1.1], 0.2);
        agent.set_proximal_target(Some(vec![0.6, 0.4, 0.5]));
        for _ in 0..5 {
            agent.train_step(&mut rng);
        }
        let action = agent.propose(&[0.6, 0.4, 0.5, 0.9, 1.1], &mut rng);
        assert_eq!(action.len(), 3);
        assert!(action.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn goal_suffix_changes_the_policy() {
        // The same design under two different goal encodings must map to
        // different proposals — the goal is a real input, not dead weight.
        let mut rng = seeded(22);
        let agent = RiskSensitiveAgent::new(config().with_goal_dim(1), &mut rng);
        let mut ra = seeded(23);
        let mut rb = seeded(23);
        let a = agent.propose(&[0.5, 0.5, 0.5, 0.8], &mut ra);
        let b = agent.propose(&[0.5, 0.5, 0.5, 1.2], &mut rb);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "observation dimension mismatch")]
    fn goal_conditioned_agent_rejects_bare_designs() {
        let mut rng = seeded(24);
        let mut agent = RiskSensitiveAgent::new(config().with_goal_dim(1), &mut rng);
        agent.observe(vec![0.5, 0.5, 0.5], 0.0);
    }

    #[test]
    fn best_design_tracks_buffer() {
        let mut rng = seeded(16);
        let mut agent = RiskSensitiveAgent::new(config(), &mut rng);
        agent.observe(vec![0.1, 0.1, 0.1], -0.5);
        agent.observe(vec![0.6, 0.4, 0.5], 0.2);
        let (x, r) = agent.best_design().unwrap();
        assert_eq!(r, 0.2);
        assert_eq!(x, &[0.6, 0.4, 0.5]);
    }
}
