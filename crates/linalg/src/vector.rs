//! Free functions over `&[f64]` vectors.
//!
//! Vectors in this workspace are plain `Vec<f64>`/`&[f64]`; a newtype would
//! buy little here since the design-space, mismatch and node-voltage vectors
//! all interoperate with slices constantly.

/// Dot product.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// assert_eq!(glova_linalg::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot of mismatched lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Element-wise sum `a + b`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add of mismatched lengths");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Element-wise difference `a - b`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub of mismatched lengths");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Scalar multiple `s * a`.
pub fn scale(a: &[f64], s: f64) -> Vec<f64> {
    a.iter().map(|x| s * x).collect()
}

/// In-place `y += alpha * x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy of mismatched lengths");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Squared Euclidean distance between two points.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dist2 of mismatched lengths");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[3.0, 4.0], &[3.0, 4.0]), 25.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm2(&[]), 0.0);
    }

    #[test]
    fn add_sub_scale() {
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
        assert_eq!(sub(&[1.0, 2.0], &[3.0, 4.0]), vec![-2.0, -2.0]);
        assert_eq!(scale(&[1.0, -2.0], -2.0), vec![-2.0, 4.0]);
    }

    #[test]
    fn axpy_in_place() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 3.0], &mut y);
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    fn dist2_matches_manual() {
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    #[should_panic(expected = "mismatched lengths")]
    fn dot_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    proptest! {
        #[test]
        fn prop_cauchy_schwarz(
            pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 0..50)
        ) {
            let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            prop_assert!(dot(&a, &b).abs() <= norm2(&a) * norm2(&b) + 1e-6);
        }

        #[test]
        fn prop_add_sub_roundtrip(
            pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 0..50)
        ) {
            let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let back = sub(&add(&a, &b), &b);
            for (x, y) in back.iter().zip(&a) {
                prop_assert!((x - y).abs() < 1e-9);
            }
        }
    }
}
