//! Numeric elimination kernels for the sparse LU refactorization.
//!
//! [`SparseLu::refactor`](crate::sparse::SparseLu::refactor) re-runs the
//! numeric elimination over a frozen fill pattern; this module provides
//! the interchangeable kernels that drive the inner loop:
//!
//! - [`NumericKernel::Scalar`] — the classic up-looking row elimination:
//!   gather the row into a dense scatter workspace, apply each source
//!   row's updates through a column → workspace translation, scatter
//!   back. Bitwise reproducible and the default everywhere the
//!   determinism batteries assert exact equality.
//! - [`NumericKernel::Blocked`] — a **compiled row-panel** kernel. The
//!   frozen pattern means every update's destination is known at
//!   symbolic time, so the whole elimination is compiled once into a
//!   flat schedule of source operations over the packed value array:
//!   each packed target row acts as its own dense panel, updated **in
//!   place** (no gather, no workspace zeroing, no scatter), with
//!   per-update destination offsets resolved at plan time instead of
//!   per refactor. Where a source row's `U` segment lands on
//!   consecutive packed positions of the target row — the common case
//!   in the dense trailing block an AMD-ordered 2-D pattern produces —
//!   the update is encoded as a **contiguous fused-multiply-add run**
//!   that the compiler vectorizes; elsewhere the precomputed offsets
//!   stream linearly from the plan.
//!
//! # Parity contract
//!
//! The compiled schedule replays exactly the scalar kernel's update
//! sequence (rows ascending, each row's sources ascending, each source's
//! `U` entries in packed order) on exactly the same operands — the
//! workspace detour of the scalar kernel does not change a single
//! arithmetic result, so the two kernels agree **bitwise** on success
//! and fail on the same first singular pivot. The parity batteries
//! still only *rely* on ≤1e-12 agreement plus blocked-vs-blocked bitwise
//! reproducibility (`crates/spice/tests/sweep_fastpaths.rs`), keeping
//! room for future kernels that reassociate.

use crate::sparse::Scalar;
use crate::LinalgError;
use std::sync::Arc;

/// Numeric elimination kernel used by
/// [`SparseLu::refactor`](crate::sparse::SparseLu::refactor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NumericKernel {
    /// Up-looking scalar row elimination — bitwise-deterministic default.
    #[default]
    Scalar,
    /// Compiled in-place elimination schedule with contiguous-FMA runs —
    /// deterministic (repeat-bitwise), ≤1e-12 from `Scalar` by contract
    /// (bitwise in the current implementation); wins on fill-heavy
    /// patterns from a few hundred unknowns up.
    Blocked,
}

impl NumericKernel {
    /// Parses a CLI-style kernel name.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the accepted values.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "scalar" => Ok(Self::Scalar),
            "blocked" => Ok(Self::Blocked),
            other => Err(format!("unknown numeric kernel `{other}` (use scalar|blocked)")),
        }
    }
}

impl std::fmt::Display for NumericKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Scalar => write!(f, "scalar"),
            Self::Blocked => write!(f, "blocked"),
        }
    }
}

/// Marker in [`SourceOp::dst_base`]: destinations come from the side
/// stream instead of a contiguous run.
const INDIRECT: u32 = u32::MAX;

/// One compiled update: "divide the target row's `L` entry by the source
/// diagonal, then subtract `f ×` the source row's `U` segment from the
/// target row" — all positions packed-value indices resolved at plan
/// time.
#[derive(Debug, Clone)]
struct SourceOp {
    /// Packed position of the target row's `L` entry (becomes `f`).
    fpos: u32,
    /// Packed position of the source row's diagonal.
    dpos: u32,
    /// First packed position of the source row's `U` segment.
    ubase: u32,
    /// `U` segment length.
    ulen: u32,
    /// First destination position of a contiguous run, or [`INDIRECT`]
    /// when the next `ulen` side-stream entries hold the destinations.
    dst_base: u32,
}

/// The compiled elimination schedule for one symbolic analysis —
/// pattern-only, shared (via [`Arc`]) by every clone of the
/// factorization.
#[derive(Debug, Clone)]
pub struct BlockedPlan {
    /// All updates, target-row-major, sources ascending within a row —
    /// the exact scalar kernel order.
    ops: Vec<SourceOp>,
    /// Destination positions for non-contiguous ops, consumed in order.
    dsts: Vec<u32>,
    /// Per pivot row: end index into `ops` (the row's updates are
    /// `row_end[p-1]..row_end[p]`).
    row_end: Vec<u32>,
}

/// Schedule handle stored inside a factorization (scratch-free — the
/// compiled kernel runs in place over the packed values).
#[derive(Debug, Clone)]
pub(crate) struct BlockedState {
    plan: Arc<BlockedPlan>,
}

impl BlockedState {
    pub(crate) fn new(plan: BlockedPlan) -> Self {
        Self { plan: Arc::new(plan) }
    }
}

/// Compiles the frozen elimination pattern into the flat update
/// schedule. For every target row `p` and `L` source `k` (ascending,
/// like the scalar loop), the source's `U` columns are resolved to
/// packed positions inside row `p` by a sorted merge; runs of
/// consecutive destinations encode as contiguous ops.
pub(crate) fn build_plan(lu_ptr: &[usize], lu_cols: &[usize], diag_idx: &[usize]) -> BlockedPlan {
    let n = diag_idx.len();
    let mut ops = Vec::new();
    let mut dsts: Vec<u32> = Vec::new();
    let mut row_end = Vec::with_capacity(n);
    let mut scratch: Vec<u32> = Vec::new();
    for p in 0..n {
        let (lo, hi) = (lu_ptr[p], lu_ptr[p + 1]);
        let row_cols = &lu_cols[lo..hi];
        for idx in lo..diag_idx[p] {
            let k = lu_cols[idx];
            let (ulo, uhi) = (diag_idx[k] + 1, lu_ptr[k + 1]);
            // Resolve each U column of the source inside the target row
            // (both sorted — one merge scan). Every U column is present:
            // the fill pattern is closed under elimination.
            scratch.clear();
            let mut t = 0usize;
            for &j in &lu_cols[ulo..uhi] {
                while row_cols[t] != j {
                    t += 1;
                }
                scratch.push((lo + t) as u32);
            }
            let contiguous = scratch.windows(2).all(|w| w[1] == w[0] + 1);
            let dst_base = match (contiguous, scratch.first()) {
                (true, Some(&first)) => first,
                (true, None) => 0, // empty U segment — run base unused
                (false, _) => {
                    dsts.extend_from_slice(&scratch);
                    INDIRECT
                }
            };
            ops.push(SourceOp {
                fpos: idx as u32,
                dpos: diag_idx[k] as u32,
                ubase: ulo as u32,
                ulen: (uhi - ulo) as u32,
                dst_base,
            });
        }
        row_end.push(ops.len() as u32);
    }
    BlockedPlan { ops, dsts, row_end }
}

/// Runs the compiled elimination over the scattered input values (the
/// caller has already zeroed `lu_vals` and scattered the input through
/// its `a_to_lu` map). Bitwise identical to the scalar kernel on
/// success.
///
/// # Errors
///
/// [`LinalgError::Singular`] at the first pivot row whose diagonal falls
/// below `eps` (checked ascending, like the scalar kernel); the factor
/// values are unspecified on error.
pub(crate) fn refactor_blocked<T: Scalar>(
    state: &BlockedState,
    diag_idx: &[usize],
    lu_vals: &mut [T],
    eps: f64,
) -> Result<(), LinalgError> {
    let plan = &*state.plan;
    let mut oi = 0usize;
    let mut di = 0usize;
    for (p, &end) in plan.row_end.iter().enumerate() {
        while oi < end as usize {
            let op = &plan.ops[oi];
            oi += 1;
            let fpos = op.fpos as usize;
            let f = lu_vals[fpos] / lu_vals[op.dpos as usize];
            lu_vals[fpos] = f;
            let ub = op.ubase as usize;
            let ul = op.ulen as usize;
            if op.dst_base != INDIRECT {
                let db = op.dst_base as usize;
                // Source (row k) and destination (row p > k) segments
                // live in different packed rows, so the ranges are
                // disjoint and the loop iterations independent.
                debug_assert!(db >= ub + ul || db + ul <= ub, "rows overlap");
                for m in 0..ul {
                    lu_vals[db + m] = lu_vals[db + m] - f * lu_vals[ub + m];
                }
            } else {
                for m in 0..ul {
                    let d = plan.dsts[di + m] as usize;
                    lu_vals[d] = lu_vals[d] - f * lu_vals[ub + m];
                }
                di += ul;
            }
        }
        if lu_vals[diag_idx[p]].modulus() < eps {
            return Err(LinalgError::Singular { index: p });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::NumericKernel;
    use crate::sparse::{SparseLu, Triplets};
    use crate::FillOrdering;

    /// A banded-plus-border pattern with enough coupling to produce fill
    /// (deterministic pseudo-random values from a splitmix-style hash).
    fn test_matrix(n: usize, seed: u64) -> crate::sparse::CsrMatrix<f64> {
        let mut t = Triplets::new(n, n);
        let mut h = seed;
        let mut next = move || {
            h = h.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((h >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for i in 0..n {
            t.push(i, i, 4.0 + next().abs());
            for off in [1usize, 7, 13] {
                if i + off < n {
                    let v = next();
                    t.push(i, i + off, v);
                    t.push(i + off, i, next());
                }
            }
            // Border row/column — the V-source-branch shape.
            if i + 1 < n {
                t.push(i, n - 1, next() * 0.1);
                t.push(n - 1, i, next() * 0.1);
            }
        }
        t.to_csr()
    }

    #[test]
    fn blocked_refactor_matches_scalar_within_1e12() {
        for &ordering in &[FillOrdering::Markowitz, FillOrdering::Amd] {
            let a = test_matrix(120, 7);
            let mut scalar = SparseLu::factor_with(&a, ordering).expect("factors");
            let mut blocked = scalar.clone().with_numeric_kernel(NumericKernel::Blocked);
            scalar.refactor(&a).expect("scalar refactor");
            blocked.refactor(&a).expect("blocked refactor");
            let b: Vec<f64> = (0..120).map(|i| (i as f64 * 0.37).sin()).collect();
            let mut xs = vec![0.0; 120];
            let mut xb = vec![0.0; 120];
            scalar.solve_into(&b, &mut xs);
            blocked.solve_into(&b, &mut xb);
            for (s, bl) in xs.iter().zip(&xb) {
                assert!(
                    (s - bl).abs() <= 1e-12 * s.abs().max(1.0),
                    "kernel divergence: {s} vs {bl} ({ordering})"
                );
            }
        }
    }

    #[test]
    fn blocked_refactor_repeats_bitwise() {
        let a = test_matrix(90, 3);
        let mut lu =
            SparseLu::factor(&a).expect("factors").with_numeric_kernel(NumericKernel::Blocked);
        let b: Vec<f64> = (0..90).map(|i| (i as f64 * 0.11).cos()).collect();
        let mut x1 = vec![0.0; 90];
        let mut x2 = vec![0.0; 90];
        lu.refactor(&a).expect("first blocked refactor");
        lu.solve_into(&b, &mut x1);
        lu.refactor(&a).expect("second blocked refactor");
        lu.solve_into(&b, &mut x2);
        assert_eq!(
            x1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            x2.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "blocked kernel must be bitwise reproducible against itself"
        );
    }
}
