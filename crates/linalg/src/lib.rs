//! Small dense linear-algebra kernels for the GLOVA workspace.
//!
//! Two subsystems need linear algebra:
//!
//! - the **Gaussian-process** surrogate inside the TuRBO initial sampler
//!   (kernel matrices, Cholesky factorization, log-determinants), and
//! - the **modified-nodal-analysis** SPICE engine (sparse-ish but small
//!   system matrices solved by LU with partial pivoting at every Newton
//!   iteration / time step).
//!
//! The GP matrices are small and dense, so a straightforward row-major
//! implementation beats bringing in a BLAS stack (none of which is
//! available offline anyway). MNA matrices, however, are `O(n)`-sparse,
//! and from a few dozen unknowns the dense `O(n³)` factorization dominates
//! every solve — the [`sparse`] module provides CSR storage and a
//! Markowitz-ordered sparse LU with symbolic-factorization reuse for that
//! path, with the dense [`Lu`] retained as the small-system fast path and
//! bitwise parity oracle.
//!
//! # Example
//!
//! ```
//! use glova_linalg::Matrix;
//!
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
//! let chol = a.cholesky(0.0).expect("SPD");
//! let x = chol.solve(&[1.0, 2.0]);
//! // verify A x = b
//! let b = a.mat_vec(&x);
//! assert!((b[0] - 1.0).abs() < 1e-12 && (b[1] - 2.0).abs() < 1e-12);
//! ```

pub mod cholesky;
pub mod kernel;
pub mod lu;
pub mod matrix;
pub mod ordering;
pub mod sparse;
pub mod vector;

pub use cholesky::Cholesky;
pub use kernel::NumericKernel;
pub use lu::Lu;
pub use matrix::Matrix;
pub use ordering::{amd_order, FillOrdering};
pub use sparse::{CsrMatrix, Scalar, SparseLu, Triplets};
pub use vector::{add, axpy, dot, norm2, scale, sub};

/// Errors produced by factorizations in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// The matrix was not (numerically) positive definite at pivot `index`.
    NotPositiveDefinite {
        /// Row/column of the failing pivot.
        index: usize,
        /// Value of the failing pivot.
        pivot: f64,
    },
    /// The matrix was singular to working precision at pivot `index`.
    Singular {
        /// Row/column of the failing pivot.
        index: usize,
    },
    /// An operation received dimensionally incompatible operands.
    DimensionMismatch {
        /// Human-readable description of the offending operation.
        context: &'static str,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite { index, pivot } => {
                write!(f, "matrix not positive definite: pivot {pivot:.3e} at index {index}")
            }
            LinalgError::Singular { index } => {
                write!(f, "matrix singular to working precision at pivot {index}")
            }
            LinalgError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch in {context}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}
