//! LU factorization with partial pivoting.
//!
//! The MNA circuit engine solves `G x = b` at every Newton iteration and
//! every transient time step; the matrices are unsymmetric (voltage-source
//! branch equations), so Cholesky does not apply and LU with partial
//! pivoting is the workhorse.

use crate::{LinalgError, Matrix};

/// Compact LU factorization `P A = L U` with partial pivoting.
///
/// `L` (unit lower) and `U` (upper) are stored interleaved in a single
/// matrix; `perm` records row swaps.
#[derive(Debug, Clone, PartialEq)]
pub struct Lu {
    lu: Matrix,
    perm: Vec<usize>,
    sign: f64,
}

impl Lu {
    /// Pivot threshold below which a step is declared singular. A pivot
    /// passes if **either** its absolute magnitude or its magnitude
    /// *relative to its row's largest original entry* reaches this
    /// floor: an absolute-only threshold misclassifies rows that are
    /// uniformly tiny but well-conditioned relative to themselves —
    /// exactly what a long unloaded mid-rail inverter chain produces on
    /// the final `gmin` rungs, where cutoff-device node rows carry only
    /// `gmin`-scale conductances and border-block cancellation leaves
    /// pivots far below any fixed absolute floor while the row itself is
    /// equally small. Accepting on either criterion makes the check a
    /// strict relaxation of the historical absolute test, so every
    /// previously working factorization is bitwise unchanged.
    const SINGULARITY_EPS: f64 = 1e-13;

    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::DimensionMismatch`] if `a` is not square.
    /// - [`LinalgError::Singular`] if a pivot column is all (numerically)
    ///   zero.
    pub fn factor(a: &Matrix) -> Result<Self, LinalgError> {
        if a.rows() != a.cols() {
            return Err(LinalgError::DimensionMismatch { context: "lu of non-square matrix" });
        }
        let n = a.rows();
        let mut this = Self { lu: a.clone(), perm: (0..n).collect(), sign: 1.0 };
        this.eliminate()?;
        Ok(this)
    }

    /// Re-factors an equally sized matrix **in place**, reusing this
    /// factorization's storage — no allocation on the Newton hot path,
    /// where the MNA Jacobian is re-factored whenever chord iteration
    /// stalls.
    ///
    /// On error the factorization is left in an unspecified state and
    /// must not be used for solves.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::DimensionMismatch`] if `a`'s shape differs from
    ///   the factored matrix.
    /// - [`LinalgError::Singular`] as in [`Lu::factor`].
    pub fn refactor(&mut self, a: &Matrix) -> Result<(), LinalgError> {
        if a.rows() != self.lu.rows() || a.cols() != self.lu.cols() {
            return Err(LinalgError::DimensionMismatch { context: "lu refactor shape mismatch" });
        }
        self.lu.copy_from(a);
        for (i, p) in self.perm.iter_mut().enumerate() {
            *p = i;
        }
        self.sign = 1.0;
        self.eliminate()
    }

    /// Scaled-partial-pivoting elimination over `self.lu` (which holds the
    /// original matrix on entry and the packed `L`/`U` factors on success).
    fn eliminate(&mut self) -> Result<(), LinalgError> {
        let n = self.lu.rows();
        let lu = &mut self.lu;

        // Scale factors for scaled partial pivoting: more robust for the
        // badly scaled MNA matrices (conductances span ~1e-12..1e3).
        let scale: Vec<f64> =
            (0..n).map(|i| lu.row(i).iter().fold(0.0f64, |m, v| m.max(v.abs()))).collect();

        for k in 0..n {
            // Find pivot row.
            let mut pivot_row = k;
            let mut best = 0.0;
            for i in k..n {
                let s = if scale[self.perm[i]] > 0.0 { scale[self.perm[i]] } else { 1.0 };
                let mag = lu[(i, k)].abs() / s;
                if mag > best {
                    best = mag;
                    pivot_row = i;
                }
            }
            // Singular only when the chosen pivot fails BOTH floors: the
            // historical absolute test (so every previously working
            // factorization is untouched) and the scaled test (`best` is
            // already |pivot| / row scale, which rescues uniformly tiny
            // but self-consistent rows). A pivot failing both is also
            // guaranteed nonzero-safe to reject before the division
            // below; an all-zero row (scale substituted by 1.0) fails
            // both floors.
            if lu[(pivot_row, k)].abs() < Self::SINGULARITY_EPS && best < Self::SINGULARITY_EPS {
                return Err(LinalgError::Singular { index: k });
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                self.perm.swap(k, pivot_row);
                self.sign = -self.sign;
            }
            let pivot = lu[(k, k)];
            for i in k + 1..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in k + 1..n {
                    lu[(i, j)] -= factor * lu[(k, j)];
                }
            }
        }
        Ok(())
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = Vec::new();
        self.solve_into(b, &mut x);
        x
    }

    /// Solves `A x = b` into a caller-provided buffer, reusing its
    /// allocation — the per-iteration solve of the Newton loop.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn solve_into(&self, b: &[f64], x: &mut Vec<f64>) {
        let n = self.dim();
        assert_eq!(b.len(), n, "rhs length mismatch");
        // Apply permutation, then forward/backward substitution.
        x.clear();
        x.extend(self.perm.iter().map(|&p| b[p]));
        for i in 1..n {
            let mut sum = x[i];
            for k in 0..i {
                sum -= self.lu[(i, k)] * x[k];
            }
            x[i] = sum;
        }
        for i in (0..n).rev() {
            let mut sum = x[i];
            for k in i + 1..n {
                sum -= self.lu[(i, k)] * x[k];
            }
            x[i] = sum / self.lu[(i, i)];
        }
    }

    /// Solves `A X = B` for `nrhs` right-hand sides sharing this one
    /// factorization — the dense counterpart of
    /// [`SparseLu::solve_into_batch`](crate::sparse::SparseLu::solve_into_batch).
    /// The packed factor is streamed through memory once with an inner
    /// loop over the batch instead of once per side.
    ///
    /// `b` holds the right-hand sides back to back (`b[r*n..(r+1)*n]` is
    /// side `r`); `x` is laid out the same way on return. Results are
    /// **bitwise identical** to `nrhs` separate [`Self::solve_into`]
    /// calls: per side, every floating-point operation happens in the
    /// same order on the same values.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim() * nrhs`.
    pub fn solve_into_batch(&self, b: &[f64], x: &mut Vec<f64>, nrhs: usize) {
        let n = self.dim();
        assert_eq!(b.len(), n * nrhs, "batched rhs length mismatch");
        if nrhs == 0 {
            x.clear();
            return;
        }
        // Interleaved workspace: w[i*nrhs + r] is permuted row i of side
        // r, so the inner per-entry loops run over contiguous memory.
        let mut w = vec![0.0f64; n * nrhs];
        for (i, &p) in self.perm.iter().enumerate() {
            for r in 0..nrhs {
                w[i * nrhs + r] = b[r * n + p];
            }
        }
        // Forward then backward substitution, same per-side operation
        // order as `solve_into` (ascending k per row, subtract in place).
        for i in 1..n {
            for k in 0..i {
                let l = self.lu[(i, k)];
                for r in 0..nrhs {
                    w[i * nrhs + r] -= l * w[k * nrhs + r];
                }
            }
        }
        for i in (0..n).rev() {
            for k in i + 1..n {
                let u = self.lu[(i, k)];
                for r in 0..nrhs {
                    w[i * nrhs + r] -= u * w[k * nrhs + r];
                }
            }
            let d = self.lu[(i, i)];
            for r in 0..nrhs {
                w[i * nrhs + r] /= d;
            }
        }
        x.clear();
        x.resize(n * nrhs, 0.0);
        for i in 0..n {
            for r in 0..nrhs {
                x[r * n + i] = w[i * nrhs + r];
            }
        }
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> f64 {
        self.sign * (0..self.dim()).map(|i| self.lu[(i, i)]).product::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn solve_2x2() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let lu = a.lu().unwrap();
        let x = lu.solve(&[3.0, 5.0]);
        // 2x + y = 3, x + 3y = 5 → x = 4/5, y = 7/5
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = a.lu().unwrap();
        let x = lu.solve(&[2.0, 3.0]);
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(a.lu(), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(3, 2);
        assert!(matches!(a.lu(), Err(LinalgError::DimensionMismatch { .. })));
    }

    #[test]
    fn determinant_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert!((a.lu().unwrap().determinant() + 2.0).abs() < 1e-12);
        let eye = Matrix::identity(4);
        assert!((eye.lu().unwrap().determinant() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn refactor_matches_fresh_factorization() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let b = Matrix::from_rows(&[&[0.0, 4.0], &[-1.0, 2.0]]);
        let mut lu = a.lu().unwrap();
        lu.refactor(&b).unwrap();
        let fresh = b.lu().unwrap();
        assert_eq!(lu, fresh);
        let x = lu.solve(&[8.0, 1.0]);
        let back = b.mat_vec(&x);
        assert!((back[0] - 8.0).abs() < 1e-12 && (back[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn refactor_rejects_shape_mismatch_and_singularity() {
        let mut lu = Matrix::identity(2).lu().unwrap();
        assert!(matches!(
            lu.refactor(&Matrix::identity(3)),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        let singular = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(lu.refactor(&singular), Err(LinalgError::Singular { .. })));
        // Recoverable: a subsequent good refactor restores a usable state.
        lu.refactor(&Matrix::identity(2)).unwrap();
        assert_eq!(lu.solve(&[5.0, 7.0]), vec![5.0, 7.0]);
    }

    #[test]
    fn solve_into_reuses_buffer() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let lu = a.lu().unwrap();
        let mut buf = vec![99.0; 7];
        lu.solve_into(&[3.0, 5.0], &mut buf);
        assert_eq!(buf.len(), 2);
        assert!((buf[0] - 0.8).abs() < 1e-12);
        assert!((buf[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn uniformly_tiny_rows_are_not_singular() {
        // A row whose every entry sits at gmin scale (1e-12) has pivots
        // far below any absolute floor, yet the system is perfectly
        // conditioned relative to itself — the scaled threshold must
        // factor it. This is the dense-robustness case of long unloaded
        // mid-rail inverter chains (cutoff devices leave node rows with
        // only gmin-scale conductances).
        let g = 1e-12;
        let a = Matrix::from_rows(&[&[2.0 * g, -g, 0.0], &[-g, 2.0 * g, -g], &[0.0, -g, 2.0 * g]]);
        let lu = a.lu().expect("tiny but well-conditioned rows must factor");
        let x_true = [1.0, -2.0, 3.0];
        let b = a.mat_vec(&x_true);
        let x = lu.solve(&b);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
        // A genuinely dependent system is still rejected.
        let singular = Matrix::from_rows(&[&[g, 2.0 * g], &[2.0 * g, 4.0 * g]]);
        assert!(matches!(singular.lu(), Err(LinalgError::Singular { .. })));
        // An all-zero row (scale 0, substituted by 1.0) is singular, not
        // a division by zero.
        let zero_row = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 0.0]]);
        assert!(matches!(zero_row.lu(), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn solve_into_batch_matches_single_solves_bitwise() {
        let a = Matrix::from_rows(&[
            &[2.0, 1.0, 0.0, 0.5],
            &[1.0, 3.0, 1.0, 0.0],
            &[0.0, 1.0, 2.5, -1.0],
            &[0.5, 0.0, -1.0, 4.0],
        ]);
        let lu = a.lu().unwrap();
        let n = 4;
        let nrhs = 3;
        let b: Vec<f64> = (0..n * nrhs).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut batch = Vec::new();
        lu.solve_into_batch(&b, &mut batch, nrhs);
        assert_eq!(batch.len(), n * nrhs);
        let mut single = Vec::new();
        for r in 0..nrhs {
            lu.solve_into(&b[r * n..(r + 1) * n], &mut single);
            for (i, &s) in single.iter().enumerate() {
                assert_eq!(
                    s.to_bits(),
                    batch[r * n + i].to_bits(),
                    "side {r} row {i}: batch {} vs single {s}",
                    batch[r * n + i]
                );
            }
        }
        // Empty batch is a no-op, not a panic.
        lu.solve_into_batch(&[], &mut batch, 0);
        assert!(batch.is_empty());
    }

    #[test]
    fn badly_scaled_system() {
        // Conductance-like scaling: entries spanning 12 orders of magnitude.
        let a = Matrix::from_rows(&[&[1e-9, 1.0], &[1.0, 1e3]]);
        let lu = a.lu().unwrap();
        let x_true = [2.0, 3.0];
        let b = a.mat_vec(&x_true);
        let x = lu.solve(&b);
        assert!((x[0] - 2.0).abs() < 1e-6);
        assert!((x[1] - 3.0).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn prop_solve_residual_small(
            entries in proptest::collection::vec(-5.0f64..5.0, 16),
            rhs in proptest::collection::vec(-10.0f64..10.0, 4),
        ) {
            // Diagonally dominate to guarantee non-singularity.
            let mut a = Matrix::from_fn(4, 4, |i, j| entries[i * 4 + j]);
            for i in 0..4 {
                a[(i, i)] += 25.0;
            }
            let lu = a.lu().unwrap();
            let x = lu.solve(&rhs);
            let back = a.mat_vec(&x);
            for (bi, ri) in back.iter().zip(&rhs) {
                prop_assert!((bi - ri).abs() < 1e-8 * (1.0 + ri.abs()));
            }
        }

        #[test]
        fn prop_determinant_of_permutation_is_pm_one(swap in 0usize..2) {
            let a = if swap == 0 {
                Matrix::identity(3)
            } else {
                Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 0.0], &[0.0, 0.0, 1.0]])
            };
            let det = a.lu().unwrap().determinant();
            prop_assert!((det.abs() - 1.0).abs() < 1e-12);
        }
    }
}
