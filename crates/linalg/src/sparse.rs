//! Sparse linear algebra: CSR storage and a sparse LU with
//! symbolic-factorization reuse.
//!
//! MNA circuit matrices are extremely sparse — a device touches at most a
//! handful of nodes, so an `n`-unknown system carries `O(n)` nonzeros while
//! the dense LU pays `O(n³)` per factorization. This module provides the
//! sparse analogue of the dense [`Lu`](crate::Lu) workflow used on the
//! SPICE hot path:
//!
//! - [`Triplets`]: an order-insensitive coordinate builder (duplicates
//!   sum, explicit zeros are kept so a stamp *pattern* can be reserved
//!   before values exist),
//! - [`CsrMatrix`]: compressed-sparse-row storage with in-place value
//!   rewrites ([`CsrMatrix::values_mut`], [`CsrMatrix::value_index`]) so
//!   an assembly template can memcpy constant stamps and restamp
//!   nonlinear devices without touching the pattern,
//! - [`SparseLu`]: LU factorization with Markowitz pivot ordering
//!   (fill-minimizing, threshold-pivoted for stability) whose **symbolic
//!   step runs once per topology** — [`SparseLu::factor`] chooses the
//!   pivot order and fill pattern, then [`SparseLu::refactor`] re-runs
//!   only the numeric elimination over the frozen pattern, and
//!   [`SparseLu::solve_into`] reuses its workspace allocation. This is
//!   the classic SPICE arrangement: the Newton loop, the `gmin` ladder
//!   and corner/mismatch sweeps all solve the *same topology* with
//!   different values, so pivot search and fill analysis are paid once.
//!
//! Everything is generic over [`Scalar`] so the AC engine's complex MNA
//! systems factor through the same machinery (and the same reuse) as the
//! real DC/transient systems.
//!
//! # Example
//!
//! ```
//! use glova_linalg::sparse::{SparseLu, Triplets};
//!
//! // A tridiagonal conductance ladder.
//! let mut t = Triplets::new(3, 3);
//! for i in 0..3 {
//!     t.push(i, i, 2.0);
//! }
//! for i in 0..2 {
//!     t.push(i, i + 1, -1.0);
//!     t.push(i + 1, i, -1.0);
//! }
//! let a = t.to_csr();
//! let mut lu = SparseLu::factor(&a).expect("nonsingular");
//! let mut x = Vec::new();
//! lu.solve_into(&[1.0, 0.0, 1.0], &mut x);
//! let mut back = vec![0.0; 3];
//! a.mat_vec_into(&x, &mut back);
//! assert!((back[0] - 1.0).abs() < 1e-12);
//! ```

use crate::LinalgError;
use std::collections::BTreeMap;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// Field-like scalar the sparse kernels are generic over.
///
/// Implemented for `f64` here and for the SPICE engine's complex type in
/// `glova-spice`, so real (DC/transient) and complex (AC) MNA systems
/// share one sparse LU. `modulus` drives pivot-magnitude comparisons.
pub trait Scalar:
    Copy
    + PartialEq
    + std::fmt::Debug
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
{
    /// The additive identity.
    fn zero() -> Self;
    /// The multiplicative identity.
    fn one() -> Self;
    /// Magnitude used for pivot comparisons (`|x|`).
    fn modulus(self) -> f64;
}

impl Scalar for f64 {
    fn zero() -> Self {
        0.0
    }

    fn one() -> Self {
        1.0
    }

    fn modulus(self) -> f64 {
        self.abs()
    }
}

/// Coordinate-format builder for a [`CsrMatrix`].
///
/// Entries may be pushed in any order; duplicates at the same `(row, col)`
/// **sum** (the natural semantics for MNA stamps) and explicit zeros are
/// preserved, which is how an assembly template reserves pattern slots for
/// values that only exist at restamp time (nonlinear-device stamps, the
/// `gmin` diagonal).
#[derive(Debug, Clone)]
pub struct Triplets<T = f64> {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, T)>,
}

impl<T: Scalar> Triplets<T> {
    /// An empty builder for a `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self { rows, cols, entries: Vec::new() }
    }

    /// Adds `value` at `(row, col)` (summing with any earlier entry there).
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: T) {
        assert!(row < self.rows && col < self.cols, "triplet ({row}, {col}) out of bounds");
        self.entries.push((row, col, value));
    }

    /// Number of raw (pre-merge) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// The raw entries in push order — lets a caller that re-stamps the
    /// same pattern repeatedly precompute a push-order → value-index map
    /// against [`CsrMatrix::value_index`] instead of rebuilding and
    /// re-sorting a builder per assembly.
    pub fn entries(&self) -> &[(usize, usize, T)] {
        &self.entries
    }

    /// Whether no entries have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Compresses to CSR: sorts by `(row, col)`, sums duplicates, keeps
    /// explicit zeros.
    pub fn to_csr(&self) -> CsrMatrix<T> {
        let mut sorted: Vec<(usize, usize, T)> = self.entries.clone();
        sorted.sort_by_key(|&(r, c, _)| (r, c));
        let mut rows_of = Vec::with_capacity(sorted.len());
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut values: Vec<T> = Vec::with_capacity(sorted.len());
        for (r, c, v) in sorted {
            match values.last_mut() {
                Some(last) if rows_of.last() == Some(&r) && col_idx.last() == Some(&c) => {
                    *last = *last + v;
                }
                _ => {
                    rows_of.push(r);
                    col_idx.push(c);
                    values.push(v);
                }
            }
        }
        let mut row_ptr = vec![0usize; self.rows + 1];
        for &r in &rows_of {
            row_ptr[r + 1] += 1;
        }
        for i in 0..self.rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        CsrMatrix { rows: self.rows, cols: self.cols, row_ptr, col_idx, values }
    }
}

/// Compressed-sparse-row matrix.
///
/// The pattern (`row_ptr`, `col_idx`) is immutable after construction;
/// values are rewritable in place, which is what lets an MNA assembly
/// template treat the value array exactly like the dense template treats
/// its base matrix: one `memcpy` of the constant stamps, then per-index
/// nonlinear restamps.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix<T = f64> {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<T>,
}

impl<T: Scalar> CsrMatrix<T> {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries (explicit zeros included).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Stored column indices of `row` (ascending).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row_cols(&self, row: usize) -> &[usize] {
        &self.col_idx[self.row_ptr[row]..self.row_ptr[row + 1]]
    }

    /// Stored values of `row` (parallel to [`Self::row_cols`]).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row_values(&self, row: usize) -> &[T] {
        &self.values[self.row_ptr[row]..self.row_ptr[row + 1]]
    }

    /// The flat value array, in `(row, col)`-sorted order.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Mutable access to the flat value array (the pattern is fixed).
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.values
    }

    /// Index into [`Self::values`] of the entry at `(row, col)`, if the
    /// pattern stores one — the primitive behind precomputed
    /// stamp-to-nonzero maps.
    pub fn value_index(&self, row: usize, col: usize) -> Option<usize> {
        let lo = self.row_ptr[row];
        let hi = self.row_ptr[row + 1];
        self.col_idx[lo..hi].binary_search(&col).ok().map(|p| lo + p)
    }

    /// Value at `(row, col)` (zero for positions outside the pattern).
    pub fn get(&self, row: usize, col: usize) -> T {
        self.value_index(row, col).map_or_else(T::zero, |i| self.values[i])
    }

    /// Whether `other` stores exactly the same sparsity pattern (shape,
    /// row pointers and column indices) — values are ignored. This is the
    /// precondition for handing `other` to a [`SparseLu::refactor`] built
    /// from `self`, and for a retargeted assembly template to keep a
    /// previously frozen symbolic factorization.
    pub fn same_pattern(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.row_ptr == other.row_ptr
            && self.col_idx == other.col_idx
    }

    /// `out = A x`, allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `out` have the wrong length.
    pub fn mat_vec_into(&self, x: &[T], out: &mut [T]) {
        assert_eq!(x.len(), self.cols, "mat_vec dimension mismatch");
        assert_eq!(out.len(), self.rows, "mat_vec output length mismatch");
        for i in 0..self.rows {
            let mut acc = T::zero();
            for (idx, &j) in (self.row_ptr[i]..self.row_ptr[i + 1]).zip(self.row_cols(i).iter()) {
                acc = acc + self.values[idx] * x[j];
            }
            out[i] = acc;
        }
    }
}

impl CsrMatrix<f64> {
    /// Densifies into a [`Matrix`](crate::Matrix) — parity-test helper,
    /// not a hot-path operation.
    pub fn to_dense(&self) -> crate::Matrix {
        let mut m = crate::Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for (&j, &v) in self.row_cols(i).iter().zip(self.row_values(i)) {
                m[(i, j)] += v;
            }
        }
        m
    }
}

/// Sparse LU factorization `P A Q = L U` with Markowitz pivot ordering
/// and a frozen fill pattern.
///
/// [`SparseLu::factor`] runs the **symbolic + numeric** first
/// factorization: threshold-pivoted Markowitz ordering (minimum
/// fill-cost pivot whose magnitude is at least [`Self::PIVOT_THRESHOLD`]
/// of its column's largest active entry), recording row/column
/// permutations, the filled `L`/`U` pattern, and a map from the input
/// matrix's nonzeros into that pattern. [`SparseLu::refactor`] then
/// re-runs the numeric elimination only — no pivot search, no pattern
/// growth, no allocation — which is the per-refresh cost the Newton
/// chord loop, the `gmin` ladder and AC frequency sweeps actually pay.
#[derive(Debug, Clone)]
pub struct SparseLu<T = f64> {
    n: usize,
    a_nnz: usize,
    /// `perm_r[p]` = original row eliminated at step `p`.
    perm_r: Vec<usize>,
    /// `perm_c[p]` = original column chosen as pivot at step `p`.
    perm_c: Vec<usize>,
    /// Packed `L` (cols `< p`, unit diagonal implicit) and `U`
    /// (cols `>= p`) rows in pivot order, columns in permuted space.
    lu_ptr: Vec<usize>,
    lu_cols: Vec<usize>,
    lu_vals: Vec<T>,
    /// Position of the diagonal within each packed row.
    diag_idx: Vec<usize>,
    /// Input nonzero `k` (CSR order) lands at `lu_vals[a_to_lu[k]]`.
    a_to_lu: Vec<usize>,
    /// Dense scatter workspace for elimination and solves.
    work: Vec<T>,
}

impl<T: Scalar> SparseLu<T> {
    /// Pivot magnitude below which a step is declared singular (matches
    /// the dense [`Lu`](crate::Lu) threshold).
    const SINGULARITY_EPS: f64 = 1e-13;

    /// Markowitz threshold-pivoting tolerance: a candidate pivot must
    /// reach this fraction of its column's largest active magnitude.
    /// 0.1 trades a little extra fill for pivots that stay numerically
    /// acceptable across refactors with drifting values (Newton
    /// iterations, `gmin` rungs).
    pub const PIVOT_THRESHOLD: f64 = 0.1;

    /// Factors a square CSR matrix: Markowitz symbolic analysis plus the
    /// first numeric elimination.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::DimensionMismatch`] if `a` is not square.
    /// - [`LinalgError::Singular`] if some elimination step finds no
    ///   pivot above the numeric floor.
    pub fn factor(a: &CsrMatrix<T>) -> Result<Self, LinalgError> {
        if a.rows() != a.cols() {
            return Err(LinalgError::DimensionMismatch {
                context: "sparse lu of non-square matrix",
            });
        }
        let n = a.rows();
        let mut this = Self::symbolic(a)?;
        this.refactor(a)?;
        debug_assert_eq!(this.n, n);
        Ok(this)
    }

    /// Markowitz ordering + fill pattern from the values of `a`.
    fn symbolic(a: &CsrMatrix<T>) -> Result<Self, LinalgError> {
        let n = a.rows();
        // Working form: rows as ordered (col -> value) maps plus a
        // column -> active-row index. First factorization only — the hot
        // path never touches these structures again.
        let mut rows: Vec<BTreeMap<usize, T>> = (0..n)
            .map(|i| a.row_cols(i).iter().copied().zip(a.row_values(i).iter().copied()).collect())
            .collect();
        // Per-column: candidate rows (lazily pruned) and an exact active
        // count, maintained incrementally — the Markowitz cost lookup
        // must be O(1), not a column-list scan.
        let mut col_rows: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut col_count = vec![0usize; n];
        for (i, row) in rows.iter().enumerate() {
            for &j in row.keys() {
                col_rows[j].push(i);
                col_count[j] += 1;
            }
        }
        let mut row_active = vec![true; n];
        let mut col_active = vec![true; n];
        let mut perm_r = Vec::with_capacity(n);
        let mut perm_c = Vec::with_capacity(n);
        // U rows in original column space, L entries per original row as
        // (step, fill) column lists; values are discarded — `refactor`
        // recomputes them over the final pattern.
        let mut u_cols: Vec<Vec<usize>> = Vec::with_capacity(n);
        let mut l_cols: Vec<Vec<usize>> = vec![Vec::new(); n];

        for step in 0..n {
            // Column maxima over the active submatrix (threshold pivoting).
            let mut col_max = vec![0.0f64; n];
            for i in (0..n).filter(|&i| row_active[i]) {
                for (&j, &v) in &rows[i] {
                    if col_active[j] {
                        col_max[j] = col_max[j].max(v.modulus());
                    }
                }
            }
            // Markowitz search: minimize (r_nnz-1)·(c_nnz-1) over
            // numerically acceptable candidates; tie-break on magnitude.
            let mut best: Option<(usize, usize, usize, f64)> = None;
            for i in (0..n).filter(|&i| row_active[i]) {
                let r_nnz = rows[i].len();
                for (&j, &v) in &rows[i] {
                    if !col_active[j] {
                        continue;
                    }
                    let mag = v.modulus();
                    if mag < Self::SINGULARITY_EPS || mag < Self::PIVOT_THRESHOLD * col_max[j] {
                        continue;
                    }
                    let cost = (r_nnz - 1) * (col_count[j] - 1);
                    let better = match best {
                        None => true,
                        Some((_, _, c, m)) => cost < c || (cost == c && mag > m),
                    };
                    if better {
                        best = Some((i, j, cost, mag));
                    }
                }
            }
            let Some((pr, pc, _, _)) = best else {
                return Err(LinalgError::Singular { index: step });
            };
            perm_r.push(pr);
            perm_c.push(pc);
            row_active[pr] = false;
            col_active[pc] = false;
            let pivot_row: Vec<(usize, T)> = rows[pr].iter().map(|(&j, &v)| (j, v)).collect();
            let pivot_val = rows[pr][&pc];
            u_cols.push(pivot_row.iter().map(|&(j, _)| j).collect());
            // The pivot row leaves the active submatrix.
            for &(j, _) in &pivot_row {
                col_count[j] -= 1;
            }

            // Eliminate the pivot column from every remaining active row,
            // inserting fill (kept even when numerically zero — the
            // pattern must be closed under elimination for refactor).
            // `col_rows` lists are pruned lazily: skip rows that went
            // inactive or whose entry was already eliminated.
            let below: Vec<usize> = std::mem::take(&mut col_rows[pc])
                .into_iter()
                .filter(|&r| row_active[r] && rows[r].contains_key(&pc))
                .collect();
            for &i in &below {
                let f = rows[i][&pc] / pivot_val;
                rows[i].remove(&pc);
                l_cols[i].push(step);
                for &(j, v) in &pivot_row {
                    if j == pc {
                        continue;
                    }
                    let entry = rows[i].entry(j).or_insert_with(|| {
                        col_rows[j].push(i);
                        col_count[j] += 1;
                        T::zero()
                    });
                    *entry = *entry - f * v;
                }
            }
        }

        // Pack the frozen pattern: per pivot step, L columns (< step,
        // already step indices) then U columns mapped through the column
        // permutation, everything sorted ascending.
        let mut col_perm_inv = vec![0usize; n];
        for (p, &c) in perm_c.iter().enumerate() {
            col_perm_inv[c] = p;
        }
        let mut lu_ptr = Vec::with_capacity(n + 1);
        let mut lu_cols = Vec::new();
        let mut diag_idx = Vec::with_capacity(n);
        lu_ptr.push(0);
        for p in 0..n {
            let mut cols: Vec<usize> = l_cols[perm_r[p]].clone();
            cols.extend(u_cols[p].iter().map(|&j| col_perm_inv[j]));
            cols.sort_unstable();
            debug_assert!(cols.windows(2).all(|w| w[0] < w[1]), "duplicate pattern column");
            let d = cols.binary_search(&p).expect("diagonal in pattern");
            diag_idx.push(lu_ptr[p] + d);
            lu_cols.extend_from_slice(&cols);
            lu_ptr.push(lu_cols.len());
        }

        // Input-nonzero → packed-pattern map (the refactor scatter).
        let mut row_perm_inv = vec![0usize; n];
        for (p, &r) in perm_r.iter().enumerate() {
            row_perm_inv[r] = p;
        }
        let mut a_to_lu = Vec::with_capacity(a.nnz());
        for i in 0..n {
            let p = row_perm_inv[i];
            let lo = lu_ptr[p];
            let hi = lu_ptr[p + 1];
            for &j in a.row_cols(i) {
                let pc = col_perm_inv[j];
                let pos = lu_cols[lo..hi]
                    .binary_search(&pc)
                    .expect("input nonzero inside the filled pattern");
                a_to_lu.push(lo + pos);
            }
        }

        let nnz = lu_cols.len();
        Ok(Self {
            n,
            a_nnz: a.nnz(),
            perm_r,
            perm_c,
            lu_ptr,
            lu_cols,
            lu_vals: vec![T::zero(); nnz],
            diag_idx,
            a_to_lu,
            work: vec![T::zero(); n],
        })
    }

    /// Numeric-only refactorization over the frozen pattern and pivot
    /// order — the hot-path refresh. `a` must have the **same pattern**
    /// as the matrix this factorization was built from (same topology;
    /// only values may differ).
    ///
    /// On error the factor values are unspecified and must not be used
    /// for solves until a successful `refactor` (or a fresh
    /// [`SparseLu::factor`]).
    ///
    /// # Errors
    ///
    /// - [`LinalgError::DimensionMismatch`] if `a`'s shape or nonzero
    ///   count differs from the factored matrix.
    /// - [`LinalgError::Singular`] if a frozen-order pivot has drifted
    ///   below the numeric floor.
    pub fn refactor(&mut self, a: &CsrMatrix<T>) -> Result<(), LinalgError> {
        if a.rows() != self.n || a.cols() != self.n || a.nnz() != self.a_nnz {
            return Err(LinalgError::DimensionMismatch {
                context: "sparse refactor pattern mismatch",
            });
        }
        // Scatter the input through the precomputed map (pattern slots
        // that are pure fill stay zero).
        for v in &mut self.lu_vals {
            *v = T::zero();
        }
        for (k, &dst) in self.a_to_lu.iter().enumerate() {
            self.lu_vals[dst] = a.values()[k];
        }
        // Up-looking row elimination over the frozen pattern: every
        // update lands inside the pattern by construction, so the inner
        // loops are pure arithmetic.
        for p in 0..self.n {
            let (lo, hi) = (self.lu_ptr[p], self.lu_ptr[p + 1]);
            for idx in lo..hi {
                self.work[self.lu_cols[idx]] = self.lu_vals[idx];
            }
            for idx in lo..self.diag_idx[p] {
                let k = self.lu_cols[idx];
                let f = self.work[k] / self.lu_vals[self.diag_idx[k]];
                self.work[k] = f;
                for jdx in self.diag_idx[k] + 1..self.lu_ptr[k + 1] {
                    let j = self.lu_cols[jdx];
                    self.work[j] = self.work[j] - f * self.lu_vals[jdx];
                }
            }
            for idx in lo..hi {
                let j = self.lu_cols[idx];
                self.lu_vals[idx] = self.work[j];
                self.work[j] = T::zero();
            }
            if self.lu_vals[self.diag_idx[p]].modulus() < Self::SINGULARITY_EPS {
                return Err(LinalgError::Singular { index: p });
            }
        }
        Ok(())
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored entries in the `L + U` pattern (fill included).
    pub fn factor_nnz(&self) -> usize {
        self.lu_cols.len()
    }

    /// Solves `A x = b` into a caller-provided buffer, reusing both the
    /// buffer and the internal permutation workspace (hence `&mut self`;
    /// the factor values are not modified).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn solve_into(&mut self, b: &[T], x: &mut Vec<T>) {
        let n = self.n;
        assert_eq!(b.len(), n, "rhs length mismatch");
        // y = P b, then unit-lower forward then upper backward
        // substitution, then x = Q y.
        for p in 0..n {
            self.work[p] = b[self.perm_r[p]];
        }
        for p in 0..n {
            let mut acc = self.work[p];
            for idx in self.lu_ptr[p]..self.diag_idx[p] {
                acc = acc - self.lu_vals[idx] * self.work[self.lu_cols[idx]];
            }
            self.work[p] = acc;
        }
        for p in (0..n).rev() {
            let mut acc = self.work[p];
            for idx in self.diag_idx[p] + 1..self.lu_ptr[p + 1] {
                acc = acc - self.lu_vals[idx] * self.work[self.lu_cols[idx]];
            }
            self.work[p] = acc / self.lu_vals[self.diag_idx[p]];
        }
        x.clear();
        x.resize(n, T::zero());
        for p in 0..n {
            x[self.perm_c[p]] = self.work[p];
            self.work[p] = T::zero();
        }
    }

    /// Solves `A x = b`, allocating the result.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn solve(&mut self, b: &[T]) -> Vec<T> {
        let mut x = Vec::new();
        self.solve_into(b, &mut x);
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;
    use proptest::prelude::*;

    fn csr_from_dense(m: &Matrix) -> CsrMatrix<f64> {
        let mut t = Triplets::new(m.rows(), m.cols());
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                if m[(i, j)] != 0.0 {
                    t.push(i, j, m[(i, j)]);
                }
            }
        }
        t.to_csr()
    }

    #[test]
    fn triplets_merge_duplicates_and_keep_zeros() {
        let mut t = Triplets::new(2, 3);
        t.push(0, 1, 2.0);
        t.push(0, 1, 3.0);
        t.push(1, 2, 0.0);
        t.push(1, 0, -1.0);
        let a = t.to_csr();
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.get(0, 1), 5.0);
        assert_eq!(a.get(1, 0), -1.0);
        assert_eq!(a.get(1, 2), 0.0, "explicit zero stays in the pattern");
        assert_eq!(a.value_index(1, 2), Some(2));
        assert_eq!(a.value_index(0, 0), None);
        assert_eq!(a.get(0, 0), 0.0);
    }

    #[test]
    fn csr_rows_are_sorted_and_indexable() {
        let mut t = Triplets::new(3, 3);
        t.push(1, 2, 3.0);
        t.push(1, 0, 1.0);
        t.push(1, 1, 2.0);
        let a = t.to_csr();
        assert_eq!(a.row_cols(1), &[0, 1, 2]);
        assert_eq!(a.row_values(1), &[1.0, 2.0, 3.0]);
        assert_eq!(a.row_cols(0), &[] as &[usize]);
        let mut out = vec![0.0; 3];
        a.mat_vec_into(&[1.0, 1.0, 1.0], &mut out);
        assert_eq!(out, vec![0.0, 6.0, 0.0]);
    }

    #[test]
    fn solve_matches_dense_on_small_system() {
        let dense = Matrix::from_rows(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 2.0]]);
        let a = csr_from_dense(&dense);
        let mut lu = SparseLu::factor(&a).unwrap();
        let b = [1.0, 2.0, 3.0];
        let x = lu.solve(&b);
        let x_dense = dense.lu().unwrap().solve(&b);
        for (s, d) in x.iter().zip(&x_dense) {
            assert!((s - d).abs() < 1e-12, "sparse {s} vs dense {d}");
        }
    }

    #[test]
    fn zero_diagonal_needs_pivoting() {
        // MNA-style voltage-source block: zero diagonal in the branch row.
        let dense = Matrix::from_rows(&[&[1e-3, 0.0, 1.0], &[0.0, 2e-3, -1.0], &[1.0, -1.0, 0.0]]);
        let a = csr_from_dense(&dense);
        let mut lu = SparseLu::factor(&a).unwrap();
        let x_true = [1.5, -0.25, 3e-3];
        let mut b = vec![0.0; 3];
        a.mat_vec_into(&x_true, &mut b);
        let x = lu.solve(&b);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        }
    }

    #[test]
    fn singular_matrix_detected() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 1, 2.0);
        t.push(1, 0, 2.0);
        t.push(1, 1, 4.0);
        assert!(matches!(SparseLu::factor(&t.to_csr()), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn non_square_rejected() {
        let t = Triplets::<f64>::new(2, 3);
        assert!(matches!(
            SparseLu::factor(&t.to_csr()),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn refactor_reuses_pattern_for_new_values() {
        // Same tridiagonal topology, two value sets: refactor must match
        // a fresh dense solve on the second.
        let n = 8;
        let build = |shift: f64| {
            let mut t = Triplets::new(n, n);
            for i in 0..n {
                t.push(i, i, 4.0 + shift + i as f64 * 0.1);
            }
            for i in 0..n - 1 {
                t.push(i, i + 1, -1.0 - shift * 0.5);
                t.push(i + 1, i, -1.0 + shift * 0.25);
            }
            t.to_csr()
        };
        let a0 = build(0.0);
        let a1 = build(1.5);
        let mut lu = SparseLu::factor(&a0).unwrap();
        lu.refactor(&a1).unwrap();
        let b: Vec<f64> = (0..n).map(|i| i as f64 - 2.0).collect();
        let x = lu.solve(&b);
        let x_dense = a1.to_dense().lu().unwrap().solve(&b);
        for (s, d) in x.iter().zip(&x_dense) {
            assert!((s - d).abs() < 1e-10, "sparse {s} vs dense {d}");
        }
    }

    #[test]
    fn refactor_rejects_shape_or_pattern_mismatch() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 1, 1.0);
        let mut lu = SparseLu::factor(&t.to_csr()).unwrap();
        // Extra nonzero = different pattern.
        t.push(0, 1, 0.5);
        assert!(matches!(lu.refactor(&t.to_csr()), Err(LinalgError::DimensionMismatch { .. })));
    }

    #[test]
    fn refactor_detects_pivot_collapse_and_recovers() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 1, 1.0);
        let good = t.to_csr();
        let mut lu = SparseLu::factor(&good).unwrap();
        let mut bad = good.clone();
        bad.values_mut()[1] = 0.0;
        assert!(matches!(lu.refactor(&bad), Err(LinalgError::Singular { .. })));
        // A subsequent good refactor restores a usable factorization.
        lu.refactor(&good).unwrap();
        assert_eq!(lu.solve(&[3.0, 4.0]), vec![3.0, 4.0]);
    }

    #[test]
    fn fill_stays_sparse_on_a_ladder() {
        // A 64-section RC-ladder-shaped tridiagonal system: the Markowitz
        // order must keep the factor O(n), not densify it.
        let n = 64;
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 3.0);
        }
        for i in 0..n - 1 {
            t.push(i, i + 1, -1.0);
            t.push(i + 1, i, -1.0);
        }
        let a = t.to_csr();
        let lu = SparseLu::factor(&a).unwrap();
        assert!(
            lu.factor_nnz() <= 4 * n,
            "tridiagonal factor should stay O(n): {} nonzeros for n = {n}",
            lu.factor_nnz()
        );
    }

    /// Random MNA-shaped system: a conductance grid (diagonally loaded,
    /// symmetric pattern) bordered by voltage-source incidence rows with
    /// zero diagonal — the structure every SPICE solve presents.
    fn mna_shaped(n_nodes: usize, entries: &[f64], gmin: f64) -> Matrix {
        let n = n_nodes + 1;
        let mut m = Matrix::zeros(n, n);
        let mut e = entries.iter().copied().cycle();
        for i in 0..n_nodes {
            m[(i, i)] += gmin + 1e-3;
            if i + 1 < n_nodes {
                let g = 1e-3 * (1.0 + e.next().unwrap_or(0.0).abs());
                m[(i, i)] += g;
                m[(i + 1, i + 1)] += g;
                m[(i, i + 1)] -= g;
                m[(i + 1, i)] -= g;
            }
        }
        // One voltage source on node 0.
        m[(0, n - 1)] = 1.0;
        m[(n - 1, 0)] = 1.0;
        m
    }

    proptest! {
        #[test]
        fn prop_sparse_matches_dense_on_spd_ish(
            entries in proptest::collection::vec(-2.0f64..2.0, 25),
            rhs in proptest::collection::vec(-1.0f64..1.0, 5),
        ) {
            // Diagonally dominant 5×5 with a random sparsity mask.
            let mut dense = Matrix::zeros(5, 5);
            for i in 0..5 {
                for j in 0..5 {
                    let v = entries[i * 5 + j];
                    if i == j || v.abs() > 1.0 {
                        dense[(i, j)] = v;
                    }
                }
                dense[(i, i)] += 10.0;
            }
            let a = csr_from_dense(&dense);
            let mut lu = SparseLu::factor(&a).unwrap();
            let x = lu.solve(&rhs);
            let x_dense = dense.lu().unwrap().solve(&rhs);
            for (s, d) in x.iter().zip(&x_dense) {
                prop_assert!((s - d).abs() < 1e-9, "sparse {} vs dense {}", s, d);
            }
        }

        #[test]
        fn prop_cloned_symbolic_refactors_identically_across_threads(
            entries in proptest::collection::vec(-1.0f64..1.0, 12),
            shift_a in -0.4f64..0.4,
            shift_b in -0.4f64..0.4,
        ) {
            // The per-worker-solver contract: a symbolic factorization
            // cloned from one primed prototype, then numerically
            // refactored with *different* values on concurrent threads,
            // must produce solutions bitwise identical to the same
            // clone-and-refactor done single-threaded — the frozen pivot
            // order and fill pattern are the only symbolic state, and
            // cloning shares nothing mutable.
            let base = mna_shaped(8, &entries, 1e-9);
            let reshape = |shift: f64| {
                let mut m = base.clone();
                for i in 0..8 {
                    m[(i, i)] *= 1.0 + shift;
                }
                m
            };
            let a0 = csr_from_dense(&base);
            let prototype = SparseLu::factor(&a0).unwrap();
            let rhs: Vec<f64> = (0..base.rows()).map(|i| (i as f64 + 0.5).cos()).collect();

            // Sequential reference: one clone per value set.
            let solve_cloned = |m: &Matrix| -> Vec<f64> {
                let mut lu = prototype.clone();
                lu.refactor(&csr_from_dense(m)).unwrap();
                lu.solve(&rhs)
            };
            let (ma, mb) = (reshape(shift_a), reshape(shift_b));
            let (seq_a, seq_b) = (solve_cloned(&ma), solve_cloned(&mb));

            // Two threads, each with its own clone and its own values.
            let (thr_a, thr_b) = std::thread::scope(|scope| {
                let ta = scope.spawn(|| solve_cloned(&ma));
                let tb = scope.spawn(|| solve_cloned(&mb));
                (ta.join().unwrap(), tb.join().unwrap())
            });
            for (s, t) in seq_a.iter().zip(&thr_a) {
                prop_assert_eq!(s.to_bits(), t.to_bits(), "thread A diverged: {} vs {}", s, t);
            }
            for (s, t) in seq_b.iter().zip(&thr_b) {
                prop_assert_eq!(s.to_bits(), t.to_bits(), "thread B diverged: {} vs {}", s, t);
            }

            // And the refactored clones stay consistent with fresh
            // single-threaded factorizations of the same values (fresh
            // symbolic analysis may pick different pivots, so this bound
            // is numerical, not bitwise).
            let mut fresh = SparseLu::factor(&csr_from_dense(&ma)).unwrap();
            let x_fresh = fresh.solve(&rhs);
            for (c, f) in thr_a.iter().zip(&x_fresh) {
                prop_assert!((c - f).abs() < 1e-9, "clone {} vs fresh {}", c, f);
            }
        }

        #[test]
        fn prop_sparse_matches_dense_on_mna_shaped(
            entries in proptest::collection::vec(-1.0f64..1.0, 12),
            gmin_exp in 3.0f64..12.0,
        ) {
            let dense = mna_shaped(8, &entries, 10f64.powf(-gmin_exp));
            let a = csr_from_dense(&dense);
            let mut lu = SparseLu::factor(&a).unwrap();
            let rhs: Vec<f64> = (0..dense.rows()).map(|i| (i as f64).sin()).collect();
            let x = lu.solve(&rhs);
            let x_dense = dense.lu().unwrap().solve(&rhs);
            for (s, d) in x.iter().zip(&x_dense) {
                prop_assert!((s - d).abs() < 1e-9, "sparse {} vs dense {}", s, d);
            }
        }
    }
}
