//! Sparse linear algebra: CSR storage and a sparse LU with
//! symbolic-factorization reuse.
//!
//! MNA circuit matrices are extremely sparse — a device touches at most a
//! handful of nodes, so an `n`-unknown system carries `O(n)` nonzeros while
//! the dense LU pays `O(n³)` per factorization. This module provides the
//! sparse analogue of the dense [`Lu`](crate::Lu) workflow used on the
//! SPICE hot path:
//!
//! - [`Triplets`]: an order-insensitive coordinate builder (duplicates
//!   sum, explicit zeros are kept so a stamp *pattern* can be reserved
//!   before values exist),
//! - [`CsrMatrix`]: compressed-sparse-row storage with in-place value
//!   rewrites ([`CsrMatrix::values_mut`], [`CsrMatrix::value_index`]) so
//!   an assembly template can memcpy constant stamps and restamp
//!   nonlinear devices without touching the pattern,
//! - [`SparseLu`]: LU factorization with Markowitz pivot ordering
//!   (fill-minimizing, threshold-pivoted for stability) whose **symbolic
//!   step runs once per topology** — [`SparseLu::factor`] chooses the
//!   pivot order and fill pattern, then [`SparseLu::refactor`] re-runs
//!   only the numeric elimination over the frozen pattern, and
//!   [`SparseLu::solve_into`] reuses its workspace allocation. This is
//!   the classic SPICE arrangement: the Newton loop, the `gmin` ladder
//!   and corner/mismatch sweeps all solve the *same topology* with
//!   different values, so pivot search and fill analysis are paid once.
//!   The symbolic phase itself runs on sorted-vec working rows with
//!   bucketed Markowitz candidate lists (no tree maps, no full-matrix
//!   scan per pivot), keeping the cold-start cost that solver pools
//!   amortize low even past a hundred unknowns. For genuinely 2-D
//!   coupling patterns (grids, sense-amp arrays) where even that scan
//!   grows with fill, [`SparseLu::factor_with`] accepts a fill-reducing
//!   **pre-order** ([`FillOrdering::Amd`](crate::ordering::FillOrdering),
//!   computed by [`amd_order`](crate::ordering::amd_order)) consumed as a
//!   static pivot sequence with Markowitz threshold pivoting retained as
//!   the per-step numeric fallback.
//! - **Multi-RHS solves**: [`SparseLu::solve_into_batch`] streams the
//!   packed factor once across a whole batch of right-hand sides (the
//!   corner-batch pattern), bitwise identical per side to repeated
//!   [`SparseLu::solve_into`] calls.
//! - **Partial refactorization** (KLU-style): when only a known subset of
//!   input values changes between refreshes (in MNA terms: the nonlinear
//!   device stamps and the `gmin` diagonal), [`SparseLu::plan_partial`]
//!   computes once, from the frozen elimination structure, which factor
//!   rows are reachable from those inputs; [`SparseLu::refactor_partial`]
//!   then re-eliminates only that set, leaving every untouched row's
//!   `L`/`U` values frozen — bitwise identical to a full
//!   [`SparseLu::refactor`] of the same matrix.
//!
//! Everything is generic over [`Scalar`] so the AC engine's complex MNA
//! systems factor through the same machinery (and the same reuse) as the
//! real DC/transient systems.
//!
//! # Example
//!
//! ```
//! use glova_linalg::sparse::{SparseLu, Triplets};
//!
//! // A tridiagonal conductance ladder.
//! let mut t = Triplets::new(3, 3);
//! for i in 0..3 {
//!     t.push(i, i, 2.0);
//! }
//! for i in 0..2 {
//!     t.push(i, i + 1, -1.0);
//!     t.push(i + 1, i, -1.0);
//! }
//! let a = t.to_csr();
//! let mut lu = SparseLu::factor(&a).expect("nonsingular");
//! let mut x = Vec::new();
//! lu.solve_into(&[1.0, 0.0, 1.0], &mut x);
//! let mut back = vec![0.0; 3];
//! a.mat_vec_into(&x, &mut back);
//! assert!((back[0] - 1.0).abs() < 1e-12);
//! ```

use crate::kernel::{self, NumericKernel};
use crate::LinalgError;
use std::ops::{Add, Div, Mul, Neg, Sub};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic id source for symbolic analyses: every [`SparseLu::factor`]
/// stamps the factorization (and all clones of it, which share the
/// symbolic state) with a fresh id, so a [`PartialPlan`] can be checked
/// against the exact pivot order it was computed for.
static SYMBOLIC_IDS: AtomicU64 = AtomicU64::new(1);

/// Field-like scalar the sparse kernels are generic over.
///
/// Implemented for `f64` here and for the SPICE engine's complex type in
/// `glova-spice`, so real (DC/transient) and complex (AC) MNA systems
/// share one sparse LU. `modulus` drives pivot-magnitude comparisons.
pub trait Scalar:
    Copy
    + PartialEq
    + std::fmt::Debug
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
{
    /// The additive identity.
    fn zero() -> Self;
    /// The multiplicative identity.
    fn one() -> Self;
    /// Magnitude used for pivot comparisons (`|x|`).
    fn modulus(self) -> f64;
}

impl Scalar for f64 {
    fn zero() -> Self {
        0.0
    }

    fn one() -> Self {
        1.0
    }

    fn modulus(self) -> f64 {
        self.abs()
    }
}

/// Coordinate-format builder for a [`CsrMatrix`].
///
/// Entries may be pushed in any order; duplicates at the same `(row, col)`
/// **sum** (the natural semantics for MNA stamps) and explicit zeros are
/// preserved, which is how an assembly template reserves pattern slots for
/// values that only exist at restamp time (nonlinear-device stamps, the
/// `gmin` diagonal).
#[derive(Debug, Clone)]
pub struct Triplets<T = f64> {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, T)>,
}

impl<T: Scalar> Triplets<T> {
    /// An empty builder for a `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self { rows, cols, entries: Vec::new() }
    }

    /// Adds `value` at `(row, col)` (summing with any earlier entry there).
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: T) {
        assert!(row < self.rows && col < self.cols, "triplet ({row}, {col}) out of bounds");
        self.entries.push((row, col, value));
    }

    /// Number of raw (pre-merge) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// The raw entries in push order — lets a caller that re-stamps the
    /// same pattern repeatedly precompute a push-order → value-index map
    /// against [`CsrMatrix::value_index`] instead of rebuilding and
    /// re-sorting a builder per assembly.
    pub fn entries(&self) -> &[(usize, usize, T)] {
        &self.entries
    }

    /// Whether no entries have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Compresses to CSR: sorts by `(row, col)`, sums duplicates, keeps
    /// explicit zeros.
    pub fn to_csr(&self) -> CsrMatrix<T> {
        let mut sorted: Vec<(usize, usize, T)> = self.entries.clone();
        sorted.sort_by_key(|&(r, c, _)| (r, c));
        let mut rows_of = Vec::with_capacity(sorted.len());
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut values: Vec<T> = Vec::with_capacity(sorted.len());
        for (r, c, v) in sorted {
            match values.last_mut() {
                Some(last) if rows_of.last() == Some(&r) && col_idx.last() == Some(&c) => {
                    *last = *last + v;
                }
                _ => {
                    rows_of.push(r);
                    col_idx.push(c);
                    values.push(v);
                }
            }
        }
        let mut row_ptr = vec![0usize; self.rows + 1];
        for &r in &rows_of {
            row_ptr[r + 1] += 1;
        }
        for i in 0..self.rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        CsrMatrix { rows: self.rows, cols: self.cols, row_ptr, col_idx, values }
    }
}

/// Compressed-sparse-row matrix.
///
/// The pattern (`row_ptr`, `col_idx`) is immutable after construction;
/// values are rewritable in place, which is what lets an MNA assembly
/// template treat the value array exactly like the dense template treats
/// its base matrix: one `memcpy` of the constant stamps, then per-index
/// nonlinear restamps.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix<T = f64> {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<T>,
}

impl<T: Scalar> CsrMatrix<T> {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries (explicit zeros included).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Stored column indices of `row` (ascending).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row_cols(&self, row: usize) -> &[usize] {
        &self.col_idx[self.row_ptr[row]..self.row_ptr[row + 1]]
    }

    /// Stored values of `row` (parallel to [`Self::row_cols`]).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row_values(&self, row: usize) -> &[T] {
        &self.values[self.row_ptr[row]..self.row_ptr[row + 1]]
    }

    /// The flat value array, in `(row, col)`-sorted order.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Mutable access to the flat value array (the pattern is fixed).
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.values
    }

    /// Index into [`Self::values`] of the entry at `(row, col)`, if the
    /// pattern stores one — the primitive behind precomputed
    /// stamp-to-nonzero maps.
    pub fn value_index(&self, row: usize, col: usize) -> Option<usize> {
        let lo = self.row_ptr[row];
        let hi = self.row_ptr[row + 1];
        self.col_idx[lo..hi].binary_search(&col).ok().map(|p| lo + p)
    }

    /// Value at `(row, col)` (zero for positions outside the pattern).
    pub fn get(&self, row: usize, col: usize) -> T {
        self.value_index(row, col).map_or_else(T::zero, |i| self.values[i])
    }

    /// Whether `other` stores exactly the same sparsity pattern (shape,
    /// row pointers and column indices) — values are ignored. This is the
    /// precondition for handing `other` to a [`SparseLu::refactor`] built
    /// from `self`, and for a retargeted assembly template to keep a
    /// previously frozen symbolic factorization.
    pub fn same_pattern(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.row_ptr == other.row_ptr
            && self.col_idx == other.col_idx
    }

    /// `out = A x`, allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `out` have the wrong length.
    pub fn mat_vec_into(&self, x: &[T], out: &mut [T]) {
        assert_eq!(x.len(), self.cols, "mat_vec dimension mismatch");
        assert_eq!(out.len(), self.rows, "mat_vec output length mismatch");
        for i in 0..self.rows {
            let mut acc = T::zero();
            for (idx, &j) in (self.row_ptr[i]..self.row_ptr[i + 1]).zip(self.row_cols(i).iter()) {
                acc = acc + self.values[idx] * x[j];
            }
            out[i] = acc;
        }
    }
}

impl CsrMatrix<f64> {
    /// Densifies into a [`Matrix`](crate::Matrix) — parity-test helper,
    /// not a hot-path operation.
    pub fn to_dense(&self) -> crate::Matrix {
        let mut m = crate::Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for (&j, &v) in self.row_cols(i).iter().zip(self.row_values(i)) {
                m[(i, j)] += v;
            }
        }
        m
    }
}

/// Sparse LU factorization `P A Q = L U` with Markowitz pivot ordering
/// and a frozen fill pattern.
///
/// [`SparseLu::factor`] runs the **symbolic + numeric** first
/// factorization: threshold-pivoted Markowitz ordering (minimum
/// fill-cost pivot whose magnitude is at least [`Self::PIVOT_THRESHOLD`]
/// of its column's largest active entry), recording row/column
/// permutations, the filled `L`/`U` pattern, and a map from the input
/// matrix's nonzeros into that pattern. [`SparseLu::refactor`] then
/// re-runs the numeric elimination only — no pivot search, no pattern
/// growth, no allocation — which is the per-refresh cost the Newton
/// chord loop, the `gmin` ladder and AC frequency sweeps actually pay.
#[derive(Debug, Clone)]
pub struct SparseLu<T = f64> {
    n: usize,
    a_nnz: usize,
    /// `perm_r[p]` = original row eliminated at step `p`.
    perm_r: Vec<usize>,
    /// `perm_c[p]` = original column chosen as pivot at step `p`.
    perm_c: Vec<usize>,
    /// Packed `L` (cols `< p`, unit diagonal implicit) and `U`
    /// (cols `>= p`) rows in pivot order, columns in permuted space.
    lu_ptr: Vec<usize>,
    lu_cols: Vec<usize>,
    lu_vals: Vec<T>,
    /// Position of the diagonal within each packed row.
    diag_idx: Vec<usize>,
    /// Input nonzero `k` (CSR order) lands at `lu_vals[a_to_lu[k]]`.
    a_to_lu: Vec<usize>,
    /// Dense scatter workspace for elimination and solves.
    work: Vec<T>,
    /// Interleaved workspace for [`Self::solve_into_batch`], grown on
    /// first use and reused across batches.
    batch_work: Vec<T>,
    /// Pre-ordered factorizations only: elimination steps where the
    /// static pivot failed the numeric stability test and Markowitz
    /// threshold pivoting chose instead. Zero for [`Self::factor`].
    fallback_steps: usize,
    /// Identity of this symbolic analysis (shared by clones); partial
    /// plans are only valid against the analysis they were computed for.
    symbolic_id: u64,
    /// Numeric elimination kernel used by [`Self::refactor`].
    kernel: NumericKernel,
    /// Lazily compiled elimination schedule for the blocked kernel
    /// (plan shared by clones; invalidated with the symbolic analysis).
    blocked: Option<kernel::BlockedState>,
}

/// A precomputed partial-refactorization schedule: the set of factor rows
/// (pivot steps) reachable from a fixed set of "dirty" input nonzeros.
///
/// Built once per symbolic analysis by [`SparseLu::plan_partial`], then
/// passed to [`SparseLu::refactor_partial`] on every refresh whose input
/// differs from the previously factored matrix only at the planned dirty
/// positions. The plan is tied to the exact pivot order it was computed
/// for — using it against a re-pivoted factorization is rejected.
#[derive(Debug, Clone)]
pub struct PartialPlan {
    /// Id of the symbolic analysis this plan belongs to.
    symbolic_id: u64,
    /// Pivot steps to re-eliminate, ascending.
    rows: Vec<usize>,
    /// Pre-resolved `(input value index, packed destination)` pairs for
    /// every input nonzero landing in a dirty row — the scatter loop
    /// runs without touching the `a_to_lu` map.
    scatter: Vec<(usize, usize)>,
    /// Dimension of the owning factorization.
    n: usize,
}

impl PartialPlan {
    /// Number of factor rows [`SparseLu::refactor_partial`] will
    /// re-eliminate (the rest keep their frozen values).
    pub fn rows_eliminated(&self) -> usize {
        self.rows.len()
    }

    /// Dimension of the factorization the plan was computed for — the
    /// row count a full [`SparseLu::refactor`] re-eliminates.
    pub fn dim(&self) -> usize {
        self.n
    }
}

impl<T: Scalar> SparseLu<T> {
    /// Pivot magnitude below which a step is declared singular (matches
    /// the dense [`Lu`](crate::Lu) threshold).
    const SINGULARITY_EPS: f64 = 1e-13;

    /// Markowitz threshold-pivoting tolerance: a candidate pivot must
    /// reach this fraction of its column's largest active magnitude.
    /// 0.1 trades a little extra fill for pivots that stay numerically
    /// acceptable across refactors with drifting values (Newton
    /// iterations, `gmin` rungs).
    pub const PIVOT_THRESHOLD: f64 = 0.1;

    /// Factors a square CSR matrix: Markowitz symbolic analysis plus the
    /// first numeric elimination.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::DimensionMismatch`] if `a` is not square.
    /// - [`LinalgError::Singular`] if some elimination step finds no
    ///   pivot above the numeric floor.
    pub fn factor(a: &CsrMatrix<T>) -> Result<Self, LinalgError> {
        if a.rows() != a.cols() {
            return Err(LinalgError::DimensionMismatch {
                context: "sparse lu of non-square matrix",
            });
        }
        let n = a.rows();
        let mut this = Self::symbolic(a)?;
        this.refactor(a)?;
        debug_assert_eq!(this.n, n);
        Ok(this)
    }

    /// Factors with an explicit [`FillOrdering`](crate::ordering::FillOrdering):
    /// [`FillOrdering::Markowitz`](crate::ordering::FillOrdering::Markowitz)
    /// is [`Self::factor`]; [`FillOrdering::Amd`](crate::ordering::FillOrdering::Amd)
    /// computes an [`amd_order`](crate::ordering::amd_order) pre-order
    /// over the symmetrized pattern and consumes it through
    /// [`Self::factor_preordered`]. Both include everything a cold start
    /// pays — ordering, symbolic analysis and the first numeric
    /// elimination — so their costs are directly comparable.
    ///
    /// # Errors
    ///
    /// As [`Self::factor`].
    pub fn factor_with(
        a: &CsrMatrix<T>,
        ordering: crate::ordering::FillOrdering,
    ) -> Result<Self, LinalgError> {
        match ordering {
            crate::ordering::FillOrdering::Markowitz => Self::factor(a),
            crate::ordering::FillOrdering::Amd => {
                if a.rows() != a.cols() {
                    return Err(LinalgError::DimensionMismatch {
                        context: "sparse lu of non-square matrix",
                    });
                }
                let seq = crate::ordering::amd_order(a);
                Self::factor_preordered(a, &seq)
            }
        }
    }

    /// Factors down a **static pivot sequence**: step `k` proposes the
    /// diagonal `(seq[k], seq[k])` as pivot, and only falls back to a
    /// full Markowitz threshold search when that proposal fails the
    /// numeric stability test (below [`Self::PIVOT_THRESHOLD`] of its
    /// column's largest active magnitude, below the singularity floor, or
    /// structurally absent — MNA voltage-source branch rows have zero
    /// diagonals, for example). [`Self::preorder_fallbacks`] reports how
    /// often the fallback fired.
    ///
    /// The result is an ordinary [`SparseLu`] — refactors, partial plans,
    /// clones and solves behave identically to a Markowitz-ordered
    /// factor, and the pivot choice is a deterministic function of the
    /// input alone.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::DimensionMismatch`] if `a` is not square or `seq`
    ///   is not a permutation of its indices.
    /// - [`LinalgError::Singular`] as [`Self::factor`].
    pub fn factor_preordered(a: &CsrMatrix<T>, seq: &[usize]) -> Result<Self, LinalgError> {
        if a.rows() != a.cols() {
            return Err(LinalgError::DimensionMismatch {
                context: "sparse lu of non-square matrix",
            });
        }
        let n = a.rows();
        let mut seen = vec![false; n];
        if seq.len() != n || !seq.iter().all(|&s| s < n && !std::mem::replace(&mut seen[s], true)) {
            return Err(LinalgError::DimensionMismatch {
                context: "pivot sequence is not a permutation of the matrix indices",
            });
        }
        let mut this = Self::symbolic_ordered(a, seq)?;
        this.refactor(a)?;
        Ok(this)
    }

    /// Elimination steps where a pre-ordered pivot failed the stability
    /// test and Markowitz threshold pivoting chose instead; zero for
    /// Markowitz-ordered factorizations. Clones share the value (it is
    /// part of the symbolic analysis).
    pub fn preorder_fallbacks(&self) -> usize {
        self.fallback_steps
    }

    /// Symbolic + threshold analysis down a static pivot sequence.
    ///
    /// Mirrors [`Self::symbolic`]'s working-row representation (sorted
    /// vecs, lazily pruned column candidate lists) but replaces the
    /// bucketed pivot *search* with a cursor over `seq` — the per-step
    /// cost is one column-max scan for the stability test plus the
    /// elimination merge itself. The Markowitz fallback (rare: voltage
    /// -source borders, numerically collapsed diagonals) scans the whole
    /// active submatrix, trading speed for the exact greedy choice on
    /// precisely the steps where the pre-order's proposal is unusable.
    fn symbolic_ordered(a: &CsrMatrix<T>, seq: &[usize]) -> Result<Self, LinalgError> {
        let n = a.rows();
        let mut rows: Vec<Vec<(usize, T)>> = (0..n)
            .map(|i| a.row_cols(i).iter().copied().zip(a.row_values(i).iter().copied()).collect())
            .collect();
        let mut col_rows: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut col_count = vec![0usize; n];
        for (i, row) in rows.iter().enumerate() {
            for &(j, _) in row {
                col_rows[j].push(i);
                col_count[j] += 1;
            }
        }
        let mut row_active = vec![true; n];
        let mut col_active = vec![true; n];
        let mut colmax_step = vec![usize::MAX; n];
        let mut colmax_val = vec![0.0f64; n];
        let mut merge_scratch: Vec<(usize, T)> = Vec::new();

        let mut perm_r = Vec::with_capacity(n);
        let mut perm_c = Vec::with_capacity(n);
        let mut u_cols: Vec<Vec<usize>> = Vec::with_capacity(n);
        let mut l_cols: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut seq_pos = 0usize;
        let mut fallbacks = 0usize;

        for step in 0..n {
            // Largest active magnitude in column `j`, pruning the
            // candidate list as a side effect (same invariant as
            // `symbolic`: only the eliminated pivot column loses entries
            // from an active row, so misses are stale fill-era
            // candidates).
            let mut col_max =
                |j: usize, col_rows: &mut Vec<Vec<usize>>, rows: &Vec<Vec<(usize, T)>>| -> f64 {
                    if colmax_step[j] == step {
                        return colmax_val[j];
                    }
                    let mut mx = 0.0f64;
                    col_rows[j].retain(|&i| {
                        if !row_active[i] {
                            return false;
                        }
                        match rows[i].binary_search_by_key(&j, |e| e.0) {
                            Ok(p) => {
                                mx = mx.max(rows[i][p].1.modulus());
                                true
                            }
                            Err(_) => false,
                        }
                    });
                    colmax_step[j] = step;
                    colmax_val[j] = mx;
                    mx
                };

            // Next unconsumed sequence entry whose row and column are
            // both still active (a fallback step may have consumed one
            // side of an earlier proposal).
            while seq_pos < n && !(row_active[seq[seq_pos]] && col_active[seq[seq_pos]]) {
                seq_pos += 1;
            }
            let mut chosen: Option<(usize, usize)> = None;
            if seq_pos < n {
                let s = seq[seq_pos];
                if let Ok(pos) = rows[s].binary_search_by_key(&s, |e| e.0) {
                    let mag = rows[s][pos].1.modulus();
                    if mag >= Self::SINGULARITY_EPS
                        && mag >= Self::PIVOT_THRESHOLD * col_max(s, &mut col_rows, &rows)
                    {
                        chosen = Some((s, s));
                        seq_pos += 1;
                    }
                }
            }
            let (pr, pc) = match chosen {
                Some(p) => p,
                None => {
                    // Markowitz threshold fallback: exact greedy search
                    // over the remaining active submatrix for this step
                    // (column maxima memoized per step, so the threshold
                    // checks cost one column scan each, like the bucketed
                    // path's).
                    fallbacks += 1;
                    let mut best: Option<(usize, usize, usize, f64)> = None;
                    for (i, row) in rows.iter().enumerate() {
                        if !row_active[i] {
                            continue;
                        }
                        for &(j, v) in row {
                            if !col_active[j] {
                                continue;
                            }
                            let mag = v.modulus();
                            if mag < Self::SINGULARITY_EPS
                                || mag < Self::PIVOT_THRESHOLD * col_max(j, &mut col_rows, &rows)
                            {
                                continue;
                            }
                            let cost = (row.len() - 1) * (col_count[j] - 1);
                            let better = match best {
                                None => true,
                                Some((_, _, c, m)) => cost < c || (cost == c && mag > m),
                            };
                            if better {
                                best = Some((i, j, cost, mag));
                            }
                        }
                    }
                    let Some((pr, pc, _, _)) = best else {
                        return Err(LinalgError::Singular { index: step });
                    };
                    (pr, pc)
                }
            };

            perm_r.push(pr);
            perm_c.push(pc);
            row_active[pr] = false;
            col_active[pc] = false;
            let pivot_row: Vec<(usize, T)> = std::mem::take(&mut rows[pr]);
            let pivot_val = pivot_row[pivot_row
                .binary_search_by_key(&pc, |e| e.0)
                .expect("pivot entry present in pivot row")]
            .1;
            u_cols.push(pivot_row.iter().map(|&(j, _)| j).collect());
            for &(j, _) in &pivot_row {
                col_count[j] -= 1;
            }

            // Eliminate the pivot column from every remaining active row
            // — identical merge to `symbolic`, minus the candidate-bucket
            // bookkeeping the ordered path doesn't need.
            let below: Vec<usize> = std::mem::take(&mut col_rows[pc])
                .into_iter()
                .filter(|&r| row_active[r] && rows[r].binary_search_by_key(&pc, |e| e.0).is_ok())
                .collect();
            for &i in &below {
                let old_row = std::mem::take(&mut rows[i]);
                let pc_pos = old_row
                    .binary_search_by_key(&pc, |e| e.0)
                    .expect("below rows contain the pivot column");
                let f = old_row[pc_pos].1 / pivot_val;
                l_cols[i].push(step);
                merge_scratch.clear();
                let mut ai = 0;
                let mut bi = 0;
                while ai < old_row.len() || bi < pivot_row.len() {
                    if ai == pc_pos {
                        ai += 1;
                        continue;
                    }
                    if bi < pivot_row.len() && pivot_row[bi].0 == pc {
                        bi += 1;
                        continue;
                    }
                    let a_col = old_row.get(ai).map(|e| e.0);
                    let b_col = pivot_row.get(bi).map(|e| e.0);
                    match (a_col, b_col) {
                        (Some(ac), Some(bc)) if ac == bc => {
                            merge_scratch.push((ac, old_row[ai].1 - f * pivot_row[bi].1));
                            ai += 1;
                            bi += 1;
                        }
                        (Some(ac), Some(bc)) if ac < bc => {
                            merge_scratch.push((ac, old_row[ai].1));
                            ai += 1;
                        }
                        (Some(ac), None) => {
                            merge_scratch.push((ac, old_row[ai].1));
                            ai += 1;
                        }
                        (_, Some(bc)) => {
                            merge_scratch.push((bc, T::zero() - f * pivot_row[bi].1));
                            col_rows[bc].push(i);
                            col_count[bc] += 1;
                            bi += 1;
                        }
                        (None, None) => unreachable!("loop condition"),
                    }
                }
                rows[i] = std::mem::replace(&mut merge_scratch, old_row);
                merge_scratch.clear();
            }
        }

        let mut this = Self::pack(a, perm_r, perm_c, u_cols, l_cols);
        this.fallback_steps = fallbacks;
        Ok(this)
    }

    /// Markowitz ordering + fill pattern from the values of `a`.
    ///
    /// Working rows are **sorted vecs** of `(col, value)` and pivot
    /// candidates come from **buckets** of rows/columns keyed by their
    /// current active count, scanned in increasing count order with the
    /// classic Duff termination bound (once the best cost found is
    /// `≤ (k−1)²`, no candidate in a row *and* column of count `> k` can
    /// beat it). This replaces the original tree-map working rows and the
    /// per-step full-matrix scans — the cold-start cost that solver pools
    /// amortize — without changing the cost function, the threshold rule
    /// or the deterministic (input-only-dependent) pivot choice.
    fn symbolic(a: &CsrMatrix<T>) -> Result<Self, LinalgError> {
        let n = a.rows();
        // Working rows, sorted by column (CSR rows already are). First
        // factorization only — the hot path never touches these again.
        let mut rows: Vec<Vec<(usize, T)>> = (0..n)
            .map(|i| a.row_cols(i).iter().copied().zip(a.row_values(i).iter().copied()).collect())
            .collect();
        // Per-column: candidate rows (lazily pruned) and an exact active
        // count, maintained incrementally — the Markowitz cost lookup
        // must be O(1), not a column-list scan.
        let mut col_rows: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut col_count = vec![0usize; n];
        for (i, row) in rows.iter().enumerate() {
            for &(j, _) in row {
                col_rows[j].push(i);
                col_count[j] += 1;
            }
        }
        let mut row_active = vec![true; n];
        let mut col_active = vec![true; n];
        // Candidate buckets by current row nnz / column count. Entries go
        // stale as counts change (a row/col is re-pushed on every count
        // change, never removed); scans validate against the live count.
        let mut row_buckets: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
        let mut col_buckets: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
        for i in 0..n {
            row_buckets[rows[i].len()].push(i);
        }
        for (j, &c) in col_count.iter().enumerate() {
            col_buckets[c].push(j);
        }
        // Per-step scratch: dedup stamps for bucket scans and a memo for
        // on-demand column maxima (threshold pivoting needs the largest
        // active magnitude of a candidate's column, but only for columns
        // the bucket scan actually reaches).
        let mut seen_row = vec![usize::MAX; n];
        let mut seen_col = vec![usize::MAX; n];
        let mut colmax_step = vec![usize::MAX; n];
        let mut colmax_val = vec![0.0f64; n];
        let mut merge_scratch: Vec<(usize, T)> = Vec::new();

        let mut perm_r = Vec::with_capacity(n);
        let mut perm_c = Vec::with_capacity(n);
        // U rows in original column space, L entries per original row as
        // (step, fill) column lists; values are discarded — `refactor`
        // recomputes them over the final pattern.
        let mut u_cols: Vec<Vec<usize>> = Vec::with_capacity(n);
        let mut l_cols: Vec<Vec<usize>> = vec![Vec::new(); n];

        for step in 0..n {
            // Largest active magnitude in column `j`, pruning the
            // candidate list as a side effect; memoized per step.
            let mut col_max =
                |j: usize, col_rows: &mut Vec<Vec<usize>>, rows: &Vec<Vec<(usize, T)>>| -> f64 {
                    if colmax_step[j] == step {
                        return colmax_val[j];
                    }
                    let mut mx = 0.0f64;
                    col_rows[j].retain(|&i| {
                        if !row_active[i] {
                            return false;
                        }
                        match rows[i].binary_search_by_key(&j, |e| e.0) {
                            Ok(p) => {
                                mx = mx.max(rows[i][p].1.modulus());
                                true
                            }
                            // Only the eliminated pivot column ever loses
                            // entries from an active row, so a miss here is a
                            // stale candidate from before that row's entry
                            // was created as fill — prune it.
                            Err(_) => false,
                        }
                    });
                    colmax_step[j] = step;
                    colmax_val[j] = mx;
                    mx
                };

            // Markowitz search: minimize (r_nnz−1)·(c_count−1) over
            // numerically acceptable candidates (|v| ≥ EPS and ≥
            // threshold × column max); tie-break on magnitude. Buckets
            // are scanned in increasing count; at the top of iteration
            // `k` every unscanned candidate lives in a row of nnz ≥ k
            // AND a column of count ≥ k, so its cost is ≥ (k−1)² — the
            // Duff bound. The break is strict so equal-cost candidates
            // are still scanned and the magnitude tie-break is honored:
            // a not-yet-seen candidate of cost exactly (k−1)² must have
            // row nnz = column count = k, i.e. it sits in this very
            // iteration's buckets.
            let mut best: Option<(usize, usize, usize, f64)> = None;
            for k in 1..=n {
                if let Some((_, _, c, _)) = best {
                    if c < (k - 1) * (k - 1) {
                        break;
                    }
                }
                // Columns of count k: every active entry of the column is
                // a candidate with cost (r_nnz−1)(k−1).
                let mut ci = 0;
                while ci < col_buckets[k].len() {
                    let j = col_buckets[k][ci];
                    ci += 1;
                    if !col_active[j] || col_count[j] != k || seen_col[j] == step {
                        continue;
                    }
                    seen_col[j] = step;
                    let cmax = col_max(j, &mut col_rows, &rows);
                    for idx in 0..col_rows[j].len() {
                        let i = col_rows[j][idx];
                        let p = rows[i]
                            .binary_search_by_key(&j, |e| e.0)
                            .expect("column candidate list pruned above");
                        let mag = rows[i][p].1.modulus();
                        if mag < Self::SINGULARITY_EPS || mag < Self::PIVOT_THRESHOLD * cmax {
                            continue;
                        }
                        let cost = (rows[i].len() - 1) * (k - 1);
                        let better = match best {
                            None => true,
                            Some((_, _, c, m)) => cost < c || (cost == c && mag > m),
                        };
                        if better {
                            best = Some((i, j, cost, mag));
                        }
                    }
                }
                // Rows of nnz k: every active-column entry is a candidate
                // with cost (k−1)(c_count−1).
                let mut ri = 0;
                while ri < row_buckets[k].len() {
                    let i = row_buckets[k][ri];
                    ri += 1;
                    if !row_active[i] || rows[i].len() != k || seen_row[i] == step {
                        continue;
                    }
                    seen_row[i] = step;
                    for p in 0..rows[i].len() {
                        let (j, v) = rows[i][p];
                        if !col_active[j] {
                            continue;
                        }
                        let mag = v.modulus();
                        if mag < Self::SINGULARITY_EPS {
                            continue;
                        }
                        let cmax = col_max(j, &mut col_rows, &rows);
                        if mag < Self::PIVOT_THRESHOLD * cmax {
                            continue;
                        }
                        let cost = (k - 1) * (col_count[j] - 1);
                        let better = match best {
                            None => true,
                            Some((_, _, c, m)) => cost < c || (cost == c && mag > m),
                        };
                        if better {
                            best = Some((i, j, cost, mag));
                        }
                    }
                }
            }
            let Some((pr, pc, _, _)) = best else {
                return Err(LinalgError::Singular { index: step });
            };
            perm_r.push(pr);
            perm_c.push(pc);
            row_active[pr] = false;
            col_active[pc] = false;
            let pivot_row: Vec<(usize, T)> = std::mem::take(&mut rows[pr]);
            let pivot_val = pivot_row[pivot_row
                .binary_search_by_key(&pc, |e| e.0)
                .expect("pivot entry present in pivot row")]
            .1;
            u_cols.push(pivot_row.iter().map(|&(j, _)| j).collect());
            // The pivot row leaves the active submatrix.
            for &(j, _) in &pivot_row {
                col_count[j] -= 1;
                if col_active[j] {
                    col_buckets[col_count[j]].push(j);
                }
            }

            // Eliminate the pivot column from every remaining active row,
            // inserting fill (kept even when numerically zero — the
            // pattern must be closed under elimination for refactor).
            // `col_rows` lists are pruned lazily: skip rows that went
            // inactive or whose entry was already eliminated.
            let below: Vec<usize> = std::mem::take(&mut col_rows[pc])
                .into_iter()
                .filter(|&r| row_active[r] && rows[r].binary_search_by_key(&pc, |e| e.0).is_ok())
                .collect();
            for &i in &below {
                let old_row = std::mem::take(&mut rows[i]);
                let pc_pos = old_row
                    .binary_search_by_key(&pc, |e| e.0)
                    .expect("below rows contain the pivot column");
                let f = old_row[pc_pos].1 / pivot_val;
                l_cols[i].push(step);
                // Sorted merge of (old_row − pivot col) with the pivot
                // row's non-pivot columns: shared columns update in
                // place, pivot-only columns become fill.
                merge_scratch.clear();
                let mut ai = 0;
                let mut bi = 0;
                while ai < old_row.len() || bi < pivot_row.len() {
                    if ai == pc_pos {
                        ai += 1;
                        continue;
                    }
                    if bi < pivot_row.len() && pivot_row[bi].0 == pc {
                        bi += 1;
                        continue;
                    }
                    let a_col = old_row.get(ai).map(|e| e.0);
                    let b_col = pivot_row.get(bi).map(|e| e.0);
                    match (a_col, b_col) {
                        (Some(ac), Some(bc)) if ac == bc => {
                            merge_scratch.push((ac, old_row[ai].1 - f * pivot_row[bi].1));
                            ai += 1;
                            bi += 1;
                        }
                        (Some(ac), Some(bc)) if ac < bc => {
                            merge_scratch.push((ac, old_row[ai].1));
                            ai += 1;
                        }
                        (Some(ac), None) => {
                            merge_scratch.push((ac, old_row[ai].1));
                            ai += 1;
                        }
                        (_, Some(bc)) => {
                            // Fill: the column enters this row.
                            merge_scratch.push((bc, T::zero() - f * pivot_row[bi].1));
                            col_rows[bc].push(i);
                            col_count[bc] += 1;
                            col_buckets[col_count[bc]].push(bc);
                            bi += 1;
                        }
                        (None, None) => unreachable!("loop condition"),
                    }
                }
                // Recycle the old row's allocation as the next scratch.
                rows[i] = std::mem::replace(&mut merge_scratch, old_row);
                merge_scratch.clear();
                row_buckets[rows[i].len()].push(i);
            }
        }

        Ok(Self::pack(a, perm_r, perm_c, u_cols, l_cols))
    }

    /// Packs a finished elimination (pivot order + per-step `U` columns +
    /// per-row `L` columns) into the frozen factor layout — the tail
    /// shared by [`Self::symbolic`] and [`Self::symbolic_ordered`].
    ///
    /// Per pivot step: L columns (< step, already step indices) then U
    /// columns mapped through the column permutation, everything sorted
    /// ascending.
    fn pack(
        a: &CsrMatrix<T>,
        perm_r: Vec<usize>,
        perm_c: Vec<usize>,
        u_cols: Vec<Vec<usize>>,
        l_cols: Vec<Vec<usize>>,
    ) -> Self {
        let n = a.rows();
        let mut col_perm_inv = vec![0usize; n];
        for (p, &c) in perm_c.iter().enumerate() {
            col_perm_inv[c] = p;
        }
        let mut lu_ptr = Vec::with_capacity(n + 1);
        let mut lu_cols = Vec::new();
        let mut diag_idx = Vec::with_capacity(n);
        lu_ptr.push(0);
        for p in 0..n {
            let mut cols: Vec<usize> = l_cols[perm_r[p]].clone();
            cols.extend(u_cols[p].iter().map(|&j| col_perm_inv[j]));
            cols.sort_unstable();
            debug_assert!(cols.windows(2).all(|w| w[0] < w[1]), "duplicate pattern column");
            let d = cols.binary_search(&p).expect("diagonal in pattern");
            diag_idx.push(lu_ptr[p] + d);
            lu_cols.extend_from_slice(&cols);
            lu_ptr.push(lu_cols.len());
        }

        // Input-nonzero → packed-pattern map (the refactor scatter).
        let mut row_perm_inv = vec![0usize; n];
        for (p, &r) in perm_r.iter().enumerate() {
            row_perm_inv[r] = p;
        }
        let mut a_to_lu = Vec::with_capacity(a.nnz());
        for i in 0..n {
            let p = row_perm_inv[i];
            let lo = lu_ptr[p];
            let hi = lu_ptr[p + 1];
            for &j in a.row_cols(i) {
                let pc = col_perm_inv[j];
                let pos = lu_cols[lo..hi]
                    .binary_search(&pc)
                    .expect("input nonzero inside the filled pattern");
                a_to_lu.push(lo + pos);
            }
        }

        let nnz = lu_cols.len();
        Self {
            n,
            a_nnz: a.nnz(),
            perm_r,
            perm_c,
            lu_ptr,
            lu_cols,
            lu_vals: vec![T::zero(); nnz],
            diag_idx,
            a_to_lu,
            work: vec![T::zero(); n],
            batch_work: Vec::new(),
            fallback_steps: 0,
            symbolic_id: SYMBOLIC_IDS.fetch_add(1, Ordering::Relaxed),
            kernel: NumericKernel::Scalar,
            blocked: None,
        }
    }

    /// Selects the numeric elimination kernel used by [`Self::refactor`]
    /// (builder form). The blocked panel schedule is built lazily on the
    /// first blocked refactor and shared by clones made afterwards.
    #[must_use]
    pub fn with_numeric_kernel(mut self, kernel: NumericKernel) -> Self {
        self.set_numeric_kernel(kernel);
        self
    }

    /// Selects the numeric elimination kernel used by [`Self::refactor`].
    pub fn set_numeric_kernel(&mut self, kernel: NumericKernel) {
        self.kernel = kernel;
    }

    /// The active numeric elimination kernel.
    pub fn numeric_kernel(&self) -> NumericKernel {
        self.kernel
    }

    /// Up-looking elimination of packed row `p` over the frozen pattern —
    /// the inner loop shared by [`Self::refactor`] (all rows) and
    /// [`Self::refactor_partial`] (reachable rows only). Free-standing
    /// over split borrows so both entry points can drive it.
    #[inline]
    fn eliminate_row(
        lu_ptr: &[usize],
        lu_cols: &[usize],
        diag_idx: &[usize],
        lu_vals: &mut [T],
        work: &mut [T],
        p: usize,
    ) {
        let (lo, hi) = (lu_ptr[p], lu_ptr[p + 1]);
        for idx in lo..hi {
            work[lu_cols[idx]] = lu_vals[idx];
        }
        for idx in lo..diag_idx[p] {
            let k = lu_cols[idx];
            let f = work[k] / lu_vals[diag_idx[k]];
            work[k] = f;
            for jdx in diag_idx[k] + 1..lu_ptr[k + 1] {
                let j = lu_cols[jdx];
                work[j] = work[j] - f * lu_vals[jdx];
            }
        }
        for idx in lo..hi {
            let j = lu_cols[idx];
            lu_vals[idx] = work[j];
            work[j] = T::zero();
        }
    }

    /// Numeric-only refactorization over the frozen pattern and pivot
    /// order — the hot-path refresh. `a` must have the **same pattern**
    /// as the matrix this factorization was built from (same topology;
    /// only values may differ).
    ///
    /// On error the factor values are unspecified and must not be used
    /// for solves until a successful `refactor` (or a fresh
    /// [`SparseLu::factor`]).
    ///
    /// # Errors
    ///
    /// - [`LinalgError::DimensionMismatch`] if `a`'s shape or nonzero
    ///   count differs from the factored matrix.
    /// - [`LinalgError::Singular`] if a frozen-order pivot has drifted
    ///   below the numeric floor.
    pub fn refactor(&mut self, a: &CsrMatrix<T>) -> Result<(), LinalgError> {
        if a.rows() != self.n || a.cols() != self.n || a.nnz() != self.a_nnz {
            return Err(LinalgError::DimensionMismatch {
                context: "sparse refactor pattern mismatch",
            });
        }
        // Scatter the input through the precomputed map (pattern slots
        // that are pure fill stay zero).
        for v in &mut self.lu_vals {
            *v = T::zero();
        }
        for (k, &dst) in self.a_to_lu.iter().enumerate() {
            self.lu_vals[dst] = a.values()[k];
        }
        match self.kernel {
            NumericKernel::Scalar => {
                // Up-looking row elimination over the frozen pattern:
                // every update lands inside the pattern by construction,
                // so the inner loops are pure arithmetic.
                for p in 0..self.n {
                    Self::eliminate_row(
                        &self.lu_ptr,
                        &self.lu_cols,
                        &self.diag_idx,
                        &mut self.lu_vals,
                        &mut self.work,
                        p,
                    );
                    if self.lu_vals[self.diag_idx[p]].modulus() < Self::SINGULARITY_EPS {
                        return Err(LinalgError::Singular { index: p });
                    }
                }
                Ok(())
            }
            NumericKernel::Blocked => {
                let state = self.blocked.get_or_insert_with(|| {
                    kernel::BlockedState::new(kernel::build_plan(
                        &self.lu_ptr,
                        &self.lu_cols,
                        &self.diag_idx,
                    ))
                });
                kernel::refactor_blocked(
                    state,
                    &self.diag_idx,
                    &mut self.lu_vals,
                    Self::SINGULARITY_EPS,
                )
            }
        }
    }

    /// Computes the partial-refactorization schedule for a fixed set of
    /// "dirty" input nonzeros (`dirty_values` indexes the input CSR's
    /// value array, i.e. [`CsrMatrix::value_index`] results).
    ///
    /// A factor row must be re-eliminated iff a dirty input scatters into
    /// it or it references (through its `L` columns) a row that must be —
    /// the reachability closure over the frozen elimination structure,
    /// computed in one ascending pass. Everything outside that closure is
    /// provably untouched by [`Self::refactor_partial`], which is what
    /// makes the partial result bitwise identical to a full refactor.
    ///
    /// Out-of-range indices in `dirty_values` are ignored (callers pass
    /// template-derived index sets; the dimension check happens at
    /// refactor time). Duplicates are harmless.
    pub fn plan_partial(&self, dirty_values: &[usize]) -> PartialPlan {
        let mut dirty = vec![false; self.n];
        let packed_row_of = |pos: usize| -> usize {
            // lu_ptr is ascending with lu_ptr[p] <= pos < lu_ptr[p+1].
            self.lu_ptr.partition_point(|&q| q <= pos) - 1
        };
        for &k in dirty_values {
            if k < self.a_to_lu.len() {
                dirty[packed_row_of(self.a_to_lu[k])] = true;
            }
        }
        // Closure: row p is dirty if any of its L columns (earlier pivot
        // rows it references) is dirty. One ascending pass suffices —
        // L columns are strictly smaller than p.
        for p in 0..self.n {
            if dirty[p] {
                continue;
            }
            for idx in self.lu_ptr[p]..self.diag_idx[p] {
                if dirty[self.lu_cols[idx]] {
                    dirty[p] = true;
                    break;
                }
            }
        }
        let rows: Vec<usize> = (0..self.n).filter(|&p| dirty[p]).collect();
        let scatter: Vec<(usize, usize)> = self
            .a_to_lu
            .iter()
            .enumerate()
            .filter(|&(_, &dst)| dirty[packed_row_of(dst)])
            .map(|(k, &dst)| (k, dst))
            .collect();
        PartialPlan { symbolic_id: self.symbolic_id, rows, scatter, n: self.n }
    }

    /// Numeric refactorization restricted to the rows of a
    /// [`PartialPlan`] — the KLU-style refresh for refreshes where only
    /// the planned dirty inputs changed since the last successful
    /// (re)factorization.
    ///
    /// **Contract:** `a` must have the same pattern as the factored
    /// matrix, and must differ from the matrix consumed by the last
    /// successful [`Self::refactor`] / `refactor_partial` **only at the
    /// plan's dirty value positions**. Under that contract the result is
    /// bitwise identical to `refactor(a)`: untouched rows keep values
    /// that a full pass would have recomputed from bit-identical inputs.
    ///
    /// On error the factor values are unspecified (like
    /// [`Self::refactor`]) and must be rebuilt by a successful full
    /// refactor or a fresh [`Self::factor`].
    ///
    /// # Errors
    ///
    /// - [`LinalgError::DimensionMismatch`] if `a`'s shape or nonzero
    ///   count differs, or the plan was computed for a different symbolic
    ///   analysis (e.g. the factorization has re-pivoted since).
    /// - [`LinalgError::Singular`] if a re-eliminated pivot drifted below
    ///   the numeric floor.
    pub fn refactor_partial(
        &mut self,
        a: &CsrMatrix<T>,
        plan: &PartialPlan,
    ) -> Result<(), LinalgError> {
        if a.rows() != self.n || a.cols() != self.n || a.nnz() != self.a_nnz {
            return Err(LinalgError::DimensionMismatch {
                context: "sparse partial refactor pattern mismatch",
            });
        }
        if plan.symbolic_id != self.symbolic_id || plan.n != self.n {
            return Err(LinalgError::DimensionMismatch {
                context: "partial plan belongs to a different symbolic analysis",
            });
        }
        // A plan that reaches every row has no rows to skip — the plain
        // refactor's straight-line scatter is cheaper than the planned
        // indirection.
        if plan.rows.len() == self.n {
            return self.refactor(a);
        }
        // Re-scatter only the dirty rows: zero their packed ranges, then
        // copy in every input nonzero that lands in one.
        for &p in &plan.rows {
            for v in &mut self.lu_vals[self.lu_ptr[p]..self.lu_ptr[p + 1]] {
                *v = T::zero();
            }
        }
        for &(k, dst) in &plan.scatter {
            self.lu_vals[dst] = a.values()[k];
        }
        // Re-eliminate the dirty rows in ascending pivot order; clean
        // rows' values are final from the previous refactor and are read
        // (never written) by the dirty rows' updates.
        for &p in &plan.rows {
            Self::eliminate_row(
                &self.lu_ptr,
                &self.lu_cols,
                &self.diag_idx,
                &mut self.lu_vals,
                &mut self.work,
                p,
            );
            if self.lu_vals[self.diag_idx[p]].modulus() < Self::SINGULARITY_EPS {
                return Err(LinalgError::Singular { index: p });
            }
        }
        Ok(())
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Identity of this factorization's symbolic analysis. Clones share
    /// the id (they share the pivot order and fill pattern); a fresh
    /// [`SparseLu::factor`] — including one replacing a collapsed frozen
    /// pivot — gets a new one. [`PartialPlan`]s are only accepted by the
    /// analysis they were computed for.
    pub fn symbolic_id(&self) -> u64 {
        self.symbolic_id
    }

    /// Stored entries in the `L + U` pattern (fill included).
    pub fn factor_nnz(&self) -> usize {
        self.lu_cols.len()
    }

    /// Solves `A x = b` into a caller-provided buffer, reusing both the
    /// buffer and the internal permutation workspace (hence `&mut self`;
    /// the factor values are not modified).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn solve_into(&mut self, b: &[T], x: &mut Vec<T>) {
        let n = self.n;
        assert_eq!(b.len(), n, "rhs length mismatch");
        // y = P b, then unit-lower forward then upper backward
        // substitution, then x = Q y.
        for p in 0..n {
            self.work[p] = b[self.perm_r[p]];
        }
        for p in 0..n {
            let mut acc = self.work[p];
            for idx in self.lu_ptr[p]..self.diag_idx[p] {
                acc = acc - self.lu_vals[idx] * self.work[self.lu_cols[idx]];
            }
            self.work[p] = acc;
        }
        for p in (0..n).rev() {
            let mut acc = self.work[p];
            for idx in self.diag_idx[p] + 1..self.lu_ptr[p + 1] {
                acc = acc - self.lu_vals[idx] * self.work[self.lu_cols[idx]];
            }
            self.work[p] = acc / self.lu_vals[self.diag_idx[p]];
        }
        x.clear();
        x.resize(n, T::zero());
        for p in 0..n {
            x[self.perm_c[p]] = self.work[p];
            self.work[p] = T::zero();
        }
    }

    /// Solves `A x = b`, allocating the result.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn solve(&mut self, b: &[T]) -> Vec<T> {
        let mut x = Vec::new();
        self.solve_into(b, &mut x);
        x
    }

    /// Solves `A X = B` for `nrhs` right-hand sides sharing this one
    /// factorization, amortizing the triangular sweeps: the packed factor
    /// is streamed through memory **once** with an inner loop over the
    /// batch, instead of once per right-hand side — the corner-batch
    /// pattern where many sweep points share a frozen factor.
    ///
    /// `b` holds the right-hand sides back to back (`b[r*n..(r+1)*n]` is
    /// side `r`); `x` is laid out the same way on return. Results are
    /// **bitwise identical** to `nrhs` separate [`Self::solve_into`]
    /// calls: per side, every floating-point operation happens in the
    /// same order on the same values.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim() * nrhs`.
    pub fn solve_into_batch(&mut self, b: &[T], x: &mut Vec<T>, nrhs: usize) {
        let n = self.n;
        assert_eq!(b.len(), n * nrhs, "batched rhs length mismatch");
        if nrhs == 0 {
            x.clear();
            return;
        }
        // Interleaved workspace: w[p*nrhs + r] is permuted row p of side
        // r, so the inner per-entry loops run over contiguous memory.
        self.batch_work.clear();
        self.batch_work.resize(n * nrhs, T::zero());
        let w = &mut self.batch_work;
        for p in 0..n {
            let src = self.perm_r[p];
            for r in 0..nrhs {
                w[p * nrhs + r] = b[r * n + src];
            }
        }
        // Unit-lower forward sweep: identical operation order per side as
        // the single-rhs path (ascending idx, subtract-then-store).
        for p in 0..n {
            for idx in self.lu_ptr[p]..self.diag_idx[p] {
                let l = self.lu_vals[idx];
                let c = self.lu_cols[idx];
                for r in 0..nrhs {
                    w[p * nrhs + r] = w[p * nrhs + r] - l * w[c * nrhs + r];
                }
            }
        }
        // Upper backward sweep.
        for p in (0..n).rev() {
            for idx in self.diag_idx[p] + 1..self.lu_ptr[p + 1] {
                let u = self.lu_vals[idx];
                let c = self.lu_cols[idx];
                for r in 0..nrhs {
                    w[p * nrhs + r] = w[p * nrhs + r] - u * w[c * nrhs + r];
                }
            }
            let d = self.lu_vals[self.diag_idx[p]];
            for r in 0..nrhs {
                w[p * nrhs + r] = w[p * nrhs + r] / d;
            }
        }
        x.clear();
        x.resize(n * nrhs, T::zero());
        for p in 0..n {
            let dst = self.perm_c[p];
            for r in 0..nrhs {
                x[r * n + dst] = w[p * nrhs + r];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;
    use proptest::prelude::*;

    fn csr_from_dense(m: &Matrix) -> CsrMatrix<f64> {
        let mut t = Triplets::new(m.rows(), m.cols());
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                if m[(i, j)] != 0.0 {
                    t.push(i, j, m[(i, j)]);
                }
            }
        }
        t.to_csr()
    }

    #[test]
    fn triplets_merge_duplicates_and_keep_zeros() {
        let mut t = Triplets::new(2, 3);
        t.push(0, 1, 2.0);
        t.push(0, 1, 3.0);
        t.push(1, 2, 0.0);
        t.push(1, 0, -1.0);
        let a = t.to_csr();
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.get(0, 1), 5.0);
        assert_eq!(a.get(1, 0), -1.0);
        assert_eq!(a.get(1, 2), 0.0, "explicit zero stays in the pattern");
        assert_eq!(a.value_index(1, 2), Some(2));
        assert_eq!(a.value_index(0, 0), None);
        assert_eq!(a.get(0, 0), 0.0);
    }

    #[test]
    fn csr_rows_are_sorted_and_indexable() {
        let mut t = Triplets::new(3, 3);
        t.push(1, 2, 3.0);
        t.push(1, 0, 1.0);
        t.push(1, 1, 2.0);
        let a = t.to_csr();
        assert_eq!(a.row_cols(1), &[0, 1, 2]);
        assert_eq!(a.row_values(1), &[1.0, 2.0, 3.0]);
        assert_eq!(a.row_cols(0), &[] as &[usize]);
        let mut out = vec![0.0; 3];
        a.mat_vec_into(&[1.0, 1.0, 1.0], &mut out);
        assert_eq!(out, vec![0.0, 6.0, 0.0]);
    }

    #[test]
    fn solve_matches_dense_on_small_system() {
        let dense = Matrix::from_rows(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 2.0]]);
        let a = csr_from_dense(&dense);
        let mut lu = SparseLu::factor(&a).unwrap();
        let b = [1.0, 2.0, 3.0];
        let x = lu.solve(&b);
        let x_dense = dense.lu().unwrap().solve(&b);
        for (s, d) in x.iter().zip(&x_dense) {
            assert!((s - d).abs() < 1e-12, "sparse {s} vs dense {d}");
        }
    }

    #[test]
    fn zero_diagonal_needs_pivoting() {
        // MNA-style voltage-source block: zero diagonal in the branch row.
        let dense = Matrix::from_rows(&[&[1e-3, 0.0, 1.0], &[0.0, 2e-3, -1.0], &[1.0, -1.0, 0.0]]);
        let a = csr_from_dense(&dense);
        let mut lu = SparseLu::factor(&a).unwrap();
        let x_true = [1.5, -0.25, 3e-3];
        let mut b = vec![0.0; 3];
        a.mat_vec_into(&x_true, &mut b);
        let x = lu.solve(&b);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        }
    }

    #[test]
    fn singular_matrix_detected() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 1, 2.0);
        t.push(1, 0, 2.0);
        t.push(1, 1, 4.0);
        assert!(matches!(SparseLu::factor(&t.to_csr()), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn non_square_rejected() {
        let t = Triplets::<f64>::new(2, 3);
        assert!(matches!(
            SparseLu::factor(&t.to_csr()),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn refactor_reuses_pattern_for_new_values() {
        // Same tridiagonal topology, two value sets: refactor must match
        // a fresh dense solve on the second.
        let n = 8;
        let build = |shift: f64| {
            let mut t = Triplets::new(n, n);
            for i in 0..n {
                t.push(i, i, 4.0 + shift + i as f64 * 0.1);
            }
            for i in 0..n - 1 {
                t.push(i, i + 1, -1.0 - shift * 0.5);
                t.push(i + 1, i, -1.0 + shift * 0.25);
            }
            t.to_csr()
        };
        let a0 = build(0.0);
        let a1 = build(1.5);
        let mut lu = SparseLu::factor(&a0).unwrap();
        lu.refactor(&a1).unwrap();
        let b: Vec<f64> = (0..n).map(|i| i as f64 - 2.0).collect();
        let x = lu.solve(&b);
        let x_dense = a1.to_dense().lu().unwrap().solve(&b);
        for (s, d) in x.iter().zip(&x_dense) {
            assert!((s - d).abs() < 1e-10, "sparse {s} vs dense {d}");
        }
    }

    #[test]
    fn refactor_rejects_shape_or_pattern_mismatch() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 1, 1.0);
        let mut lu = SparseLu::factor(&t.to_csr()).unwrap();
        // Extra nonzero = different pattern.
        t.push(0, 1, 0.5);
        assert!(matches!(lu.refactor(&t.to_csr()), Err(LinalgError::DimensionMismatch { .. })));
    }

    #[test]
    fn refactor_detects_pivot_collapse_and_recovers() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 1, 1.0);
        let good = t.to_csr();
        let mut lu = SparseLu::factor(&good).unwrap();
        let mut bad = good.clone();
        bad.values_mut()[1] = 0.0;
        assert!(matches!(lu.refactor(&bad), Err(LinalgError::Singular { .. })));
        // A subsequent good refactor restores a usable factorization.
        lu.refactor(&good).unwrap();
        assert_eq!(lu.solve(&[3.0, 4.0]), vec![3.0, 4.0]);
    }

    #[test]
    fn partial_refactor_matches_full_bitwise() {
        // Tridiagonal ladder; dirty set = two interior diagonal entries.
        // The partial refresh must agree with a full refactor bit for
        // bit, and must re-eliminate strictly fewer rows.
        let n = 16;
        let build = |d2: f64, d9: f64| {
            let mut t = Triplets::new(n, n);
            for i in 0..n {
                let d = if i == 2 {
                    d2
                } else if i == 9 {
                    d9
                } else {
                    4.0 + i as f64 * 0.1
                };
                t.push(i, i, d);
            }
            for i in 0..n - 1 {
                t.push(i, i + 1, -1.0);
                t.push(i + 1, i, -1.0);
            }
            t.to_csr()
        };
        let a0 = build(4.2, 4.9);
        let a1 = build(6.5, 3.1);
        let mut full = SparseLu::factor(&a0).unwrap();
        let mut partial = full.clone();
        let dirty = vec![a0.value_index(2, 2).unwrap(), a0.value_index(9, 9).unwrap()];
        let plan = partial.plan_partial(&dirty);
        assert!(plan.rows_eliminated() < n, "plan must exclude unreachable rows");
        assert!(plan.rows_eliminated() >= 2, "dirty rows themselves are in the plan");
        full.refactor(&a1).unwrap();
        partial.refactor_partial(&a1, &plan).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let xf = full.solve(&b);
        let xp = partial.solve(&b);
        for (f, p) in xf.iter().zip(&xp) {
            assert_eq!(f.to_bits(), p.to_bits(), "partial {p} vs full {f}");
        }
    }

    #[test]
    fn partial_plan_with_all_inputs_dirty_is_a_full_refactor() {
        let mut t = Triplets::new(4, 4);
        for i in 0..4 {
            t.push(i, i, 3.0 + i as f64);
        }
        t.push(0, 3, 1.0);
        t.push(3, 0, 1.0);
        let a = t.to_csr();
        let lu = SparseLu::factor(&a).unwrap();
        let plan = lu.plan_partial(&(0..a.nnz()).collect::<Vec<_>>());
        assert_eq!(plan.rows_eliminated(), plan.dim(), "all dirty ⇒ every row re-eliminated");
    }

    #[test]
    fn partial_plan_rejected_after_repivot() {
        let mut t = Triplets::new(3, 3);
        for i in 0..3 {
            t.push(i, i, 2.0);
        }
        let a = t.to_csr();
        let lu = SparseLu::factor(&a).unwrap();
        let plan = lu.plan_partial(&[0]);
        // A fresh factorization is a different symbolic analysis even on
        // the same matrix — the plan must not be accepted against it.
        let mut refreshed = SparseLu::factor(&a).unwrap();
        assert_ne!(lu.symbolic_id(), refreshed.symbolic_id());
        assert!(matches!(
            refreshed.refactor_partial(&a, &plan),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        // Clones share the analysis and accept it.
        let mut clone = lu.clone();
        clone.refactor_partial(&a, &plan).unwrap();
    }

    /// A `rows × cols` 2-D grid Laplacian — the coupling shape of the
    /// sense-amp array workload, where fill-reducing ordering matters.
    fn grid_laplacian(rows: usize, cols: usize) -> CsrMatrix<f64> {
        let n = rows * cols;
        let at = |r: usize, c: usize| r * cols + c;
        let mut t = Triplets::new(n, n);
        for r in 0..rows {
            for c in 0..cols {
                t.push(at(r, c), at(r, c), 4.5);
                if r + 1 < rows {
                    t.push(at(r, c), at(r + 1, c), -1.0);
                    t.push(at(r + 1, c), at(r, c), -1.0);
                }
                if c + 1 < cols {
                    t.push(at(r, c), at(r, c + 1), -1.0);
                    t.push(at(r, c + 1), at(r, c), -1.0);
                }
            }
        }
        t.to_csr()
    }

    #[test]
    fn amd_factor_matches_dense_oracle_on_grid() {
        let a = grid_laplacian(6, 7);
        let mut lu = SparseLu::factor_with(&a, crate::FillOrdering::Amd).unwrap();
        assert_eq!(lu.preorder_fallbacks(), 0, "SPD-ish grid diagonals pass the threshold");
        let n = a.rows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos()).collect();
        let x = lu.solve(&b);
        let x_dense = a.to_dense().lu().unwrap().solve(&b);
        for (s, d) in x.iter().zip(&x_dense) {
            assert!((s - d).abs() < 1e-9, "amd {s} vs dense {d}");
        }
    }

    #[test]
    fn amd_factor_handles_zero_diagonal_via_markowitz_fallback() {
        // MNA voltage-source border: the branch row/column has a zero
        // diagonal, so its pre-ordered pivot proposal must fail the
        // stability test and fall through to the Markowitz search.
        let dense = mna_shaped(8, &[0.3, -0.7, 0.5, 0.1, -0.2, 0.9], 1e-9);
        let a = csr_from_dense(&dense);
        let mut lu = SparseLu::factor_with(&a, crate::FillOrdering::Amd).unwrap();
        assert!(lu.preorder_fallbacks() >= 1, "zero-diagonal branch row needs the fallback");
        let rhs: Vec<f64> = (0..dense.rows()).map(|i| (i as f64).sin()).collect();
        let x = lu.solve(&rhs);
        let x_dense = dense.lu().unwrap().solve(&rhs);
        for (s, d) in x.iter().zip(&x_dense) {
            assert!((s - d).abs() < 1e-9, "amd {s} vs dense {d}");
        }
    }

    #[test]
    fn amd_factor_is_bitwise_stable_across_clone_and_refactor() {
        // The pooled-solver contract must hold for pre-ordered factors
        // exactly as for Markowitz ones: clones share the symbolic
        // analysis, and refactor + solve is bitwise reproducible.
        let a = grid_laplacian(5, 5);
        let mut b = a.clone();
        for (k, v) in b.values_mut().iter_mut().enumerate() {
            *v *= 1.0 + 1e-3 * (k % 7) as f64;
        }
        let proto = SparseLu::factor_with(&a, crate::FillOrdering::Amd).unwrap();
        let rhs: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.9).sin()).collect();
        let solve_cloned = |m: &CsrMatrix<f64>| -> Vec<f64> {
            let mut lu = proto.clone();
            lu.refactor(m).unwrap();
            lu.solve(&rhs)
        };
        let seq = solve_cloned(&b);
        let (t1, t2) = std::thread::scope(|s| {
            let h1 = s.spawn(|| solve_cloned(&b));
            let h2 = s.spawn(|| solve_cloned(&b));
            (h1.join().unwrap(), h2.join().unwrap())
        });
        for (a_bits, b_bits) in seq.iter().zip(t1.iter().chain(t2.iter())) {
            assert_eq!(a_bits.to_bits(), b_bits.to_bits());
        }
        // Partial plans work against pre-ordered factors too.
        let mut partial = proto.clone();
        let mut full = proto.clone();
        let dirty: Vec<usize> = (0..3).map(|i| a.value_index(i, i).unwrap()).collect();
        let plan = partial.plan_partial(&dirty);
        let mut shifted = a.clone();
        for &k in &dirty {
            shifted.values_mut()[k] += 0.25;
        }
        full.refactor(&shifted).unwrap();
        partial.refactor_partial(&shifted, &plan).unwrap();
        let xf = full.solve(&rhs);
        let xp = partial.solve(&rhs);
        for (f, p) in xf.iter().zip(&xp) {
            assert_eq!(f.to_bits(), p.to_bits(), "partial {p} vs full {f}");
        }
    }

    #[test]
    fn amd_reduces_symbolic_work_on_grids() {
        // The whole point of the pre-order: on a 2-D pattern the AMD
        // factor must not carry grossly more fill than the greedy
        // Markowitz one (it usually carries less; allow headroom since
        // threshold pivoting perturbs both).
        let a = grid_laplacian(16, 16);
        let markowitz = SparseLu::factor(&a).unwrap();
        let amd = SparseLu::factor_with(&a, crate::FillOrdering::Amd).unwrap();
        assert!(
            (amd.factor_nnz() as f64) <= 1.25 * markowitz.factor_nnz() as f64,
            "amd fill {} vs markowitz fill {}",
            amd.factor_nnz(),
            markowitz.factor_nnz()
        );
    }

    #[test]
    fn factor_preordered_rejects_non_permutations() {
        let a = grid_laplacian(3, 3);
        for bad in [vec![0usize; 9], (0..8).collect::<Vec<_>>(), (1..10).collect::<Vec<_>>()] {
            assert!(matches!(
                SparseLu::factor_preordered(&a, &bad),
                Err(LinalgError::DimensionMismatch { .. })
            ));
        }
    }

    #[test]
    fn sparse_solve_into_batch_matches_single_solves_bitwise() {
        let a = grid_laplacian(7, 5);
        let n = a.rows();
        let nrhs = 4;
        for ordering in [crate::FillOrdering::Markowitz, crate::FillOrdering::Amd] {
            let mut lu = SparseLu::factor_with(&a, ordering).unwrap();
            let b: Vec<f64> = (0..n * nrhs).map(|i| (i as f64 * 0.17).sin()).collect();
            let mut batch = Vec::new();
            lu.solve_into_batch(&b, &mut batch, nrhs);
            assert_eq!(batch.len(), n * nrhs);
            let mut single = Vec::new();
            for r in 0..nrhs {
                lu.solve_into(&b[r * n..(r + 1) * n], &mut single);
                for (i, &s) in single.iter().enumerate() {
                    assert_eq!(
                        s.to_bits(),
                        batch[r * n + i].to_bits(),
                        "{ordering}: side {r} row {i}"
                    );
                }
            }
            lu.solve_into_batch(&[], &mut batch, 0);
            assert!(batch.is_empty());
        }
    }

    #[test]
    fn fill_stays_sparse_on_a_ladder() {
        // A 64-section RC-ladder-shaped tridiagonal system: the Markowitz
        // order must keep the factor O(n), not densify it.
        let n = 64;
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 3.0);
        }
        for i in 0..n - 1 {
            t.push(i, i + 1, -1.0);
            t.push(i + 1, i, -1.0);
        }
        let a = t.to_csr();
        let lu = SparseLu::factor(&a).unwrap();
        assert!(
            lu.factor_nnz() <= 4 * n,
            "tridiagonal factor should stay O(n): {} nonzeros for n = {n}",
            lu.factor_nnz()
        );
    }

    /// Random MNA-shaped system: a conductance grid (diagonally loaded,
    /// symmetric pattern) bordered by voltage-source incidence rows with
    /// zero diagonal — the structure every SPICE solve presents.
    fn mna_shaped(n_nodes: usize, entries: &[f64], gmin: f64) -> Matrix {
        let n = n_nodes + 1;
        let mut m = Matrix::zeros(n, n);
        let mut e = entries.iter().copied().cycle();
        for i in 0..n_nodes {
            m[(i, i)] += gmin + 1e-3;
            if i + 1 < n_nodes {
                let g = 1e-3 * (1.0 + e.next().unwrap_or(0.0).abs());
                m[(i, i)] += g;
                m[(i + 1, i + 1)] += g;
                m[(i, i + 1)] -= g;
                m[(i + 1, i)] -= g;
            }
        }
        // One voltage source on node 0.
        m[(0, n - 1)] = 1.0;
        m[(n - 1, 0)] = 1.0;
        m
    }

    proptest! {
        #[test]
        fn prop_sparse_matches_dense_on_spd_ish(
            entries in proptest::collection::vec(-2.0f64..2.0, 25),
            rhs in proptest::collection::vec(-1.0f64..1.0, 5),
        ) {
            // Diagonally dominant 5×5 with a random sparsity mask.
            let mut dense = Matrix::zeros(5, 5);
            for i in 0..5 {
                for j in 0..5 {
                    let v = entries[i * 5 + j];
                    if i == j || v.abs() > 1.0 {
                        dense[(i, j)] = v;
                    }
                }
                dense[(i, i)] += 10.0;
            }
            let a = csr_from_dense(&dense);
            let mut lu = SparseLu::factor(&a).unwrap();
            let x = lu.solve(&rhs);
            let x_dense = dense.lu().unwrap().solve(&rhs);
            for (s, d) in x.iter().zip(&x_dense) {
                prop_assert!((s - d).abs() < 1e-9, "sparse {} vs dense {}", s, d);
            }
        }

        #[test]
        fn prop_cloned_symbolic_refactors_identically_across_threads(
            entries in proptest::collection::vec(-1.0f64..1.0, 12),
            shift_a in -0.4f64..0.4,
            shift_b in -0.4f64..0.4,
        ) {
            // The per-worker-solver contract: a symbolic factorization
            // cloned from one primed prototype, then numerically
            // refactored with *different* values on concurrent threads,
            // must produce solutions bitwise identical to the same
            // clone-and-refactor done single-threaded — the frozen pivot
            // order and fill pattern are the only symbolic state, and
            // cloning shares nothing mutable.
            let base = mna_shaped(8, &entries, 1e-9);
            let reshape = |shift: f64| {
                let mut m = base.clone();
                for i in 0..8 {
                    m[(i, i)] *= 1.0 + shift;
                }
                m
            };
            let a0 = csr_from_dense(&base);
            let prototype = SparseLu::factor(&a0).unwrap();
            let rhs: Vec<f64> = (0..base.rows()).map(|i| (i as f64 + 0.5).cos()).collect();

            // Sequential reference: one clone per value set.
            let solve_cloned = |m: &Matrix| -> Vec<f64> {
                let mut lu = prototype.clone();
                lu.refactor(&csr_from_dense(m)).unwrap();
                lu.solve(&rhs)
            };
            let (ma, mb) = (reshape(shift_a), reshape(shift_b));
            let (seq_a, seq_b) = (solve_cloned(&ma), solve_cloned(&mb));

            // Two threads, each with its own clone and its own values.
            let (thr_a, thr_b) = std::thread::scope(|scope| {
                let ta = scope.spawn(|| solve_cloned(&ma));
                let tb = scope.spawn(|| solve_cloned(&mb));
                (ta.join().unwrap(), tb.join().unwrap())
            });
            for (s, t) in seq_a.iter().zip(&thr_a) {
                prop_assert_eq!(s.to_bits(), t.to_bits(), "thread A diverged: {} vs {}", s, t);
            }
            for (s, t) in seq_b.iter().zip(&thr_b) {
                prop_assert_eq!(s.to_bits(), t.to_bits(), "thread B diverged: {} vs {}", s, t);
            }

            // And the refactored clones stay consistent with fresh
            // single-threaded factorizations of the same values (fresh
            // symbolic analysis may pick different pivots, so this bound
            // is numerical, not bitwise).
            let mut fresh = SparseLu::factor(&csr_from_dense(&ma)).unwrap();
            let x_fresh = fresh.solve(&rhs);
            for (c, f) in thr_a.iter().zip(&x_fresh) {
                prop_assert!((c - f).abs() < 1e-9, "clone {} vs fresh {}", c, f);
            }
        }

        #[test]
        fn prop_amd_order_is_a_valid_permutation(
            edges in proptest::collection::vec((0usize..12, 0usize..12), 0..40),
        ) {
            // Any square pattern — including asymmetric, disconnected and
            // empty-row cases — must order every index exactly once.
            let n = 12;
            let mut t = Triplets::new(n, n);
            for i in 0..n {
                t.push(i, i, 1.0);
            }
            for &(i, j) in &edges {
                t.push(i, j, -1.0);
            }
            let perm = crate::ordering::amd_order(&t.to_csr());
            prop_assert_eq!(perm.len(), n);
            let mut seen = vec![false; n];
            for &p in &perm {
                prop_assert!(p < n && !seen[p], "index {} repeated or out of range", p);
                seen[p] = true;
            }
        }

        #[test]
        fn prop_amd_factor_matches_dense_on_mna_shaped(
            entries in proptest::collection::vec(-1.0f64..1.0, 12),
            gmin_exp in 3.0f64..12.0,
        ) {
            // Pre-ordered factorization against the dense oracle on the
            // exact structure every SPICE solve presents (zero-diagonal
            // voltage-source border included, which exercises the
            // Markowitz fallback path).
            let dense = mna_shaped(8, &entries, 10f64.powf(-gmin_exp));
            let a = csr_from_dense(&dense);
            let mut lu = SparseLu::factor_with(&a, crate::FillOrdering::Amd).unwrap();
            let rhs: Vec<f64> = (0..dense.rows()).map(|i| (i as f64).sin()).collect();
            let x = lu.solve(&rhs);
            let x_dense = dense.lu().unwrap().solve(&rhs);
            for (s, d) in x.iter().zip(&x_dense) {
                prop_assert!((s - d).abs() < 1e-9, "amd {} vs dense {}", s, d);
            }
        }

        #[test]
        fn prop_sparse_matches_dense_on_mna_shaped(
            entries in proptest::collection::vec(-1.0f64..1.0, 12),
            gmin_exp in 3.0f64..12.0,
        ) {
            let dense = mna_shaped(8, &entries, 10f64.powf(-gmin_exp));
            let a = csr_from_dense(&dense);
            let mut lu = SparseLu::factor(&a).unwrap();
            let rhs: Vec<f64> = (0..dense.rows()).map(|i| (i as f64).sin()).collect();
            let x = lu.solve(&rhs);
            let x_dense = dense.lu().unwrap().solve(&rhs);
            for (s, d) in x.iter().zip(&x_dense) {
                prop_assert!((s - d).abs() < 1e-9, "sparse {} vs dense {}", s, d);
            }
        }
    }
}
