//! Fill-reducing orderings for the sparse LU.
//!
//! The Markowitz symbolic phase in [`sparse`](crate::sparse) interleaves
//! pivot *search* with elimination: every step scans candidate buckets,
//! validates column maxima and re-ranks rows — robust, but the scan cost
//! grows with fill and dominates the cold start on genuinely 2-D coupling
//! patterns (grids, arrays) where 1-D chains stayed cheap. The classic
//! answer is to split ordering from factorization: compute a
//! **fill-reducing pre-order** once from the pattern alone, then run the
//! symbolic elimination down that static pivot sequence with only a local
//! numeric stability check per step.
//!
//! [`amd_order`] implements an approximate-minimum-degree (AMD) ordering
//! over the **symmetrized** nonzero pattern (MNA matrices are structurally
//! near-symmetric — device stamps are, and the voltage-source border
//! blocks symmetrize to themselves):
//!
//! - **quotient-graph elimination**: eliminated pivots become *elements*
//!   whose boundary lists stand in for the clique their fill would create,
//!   so no fill is ever materialized while ordering;
//! - **approximate external degrees**: a variable's degree is bounded by
//!   `|A_i| + |L_p \ i| + Σ_e |L_e \ L_p|` using per-element external
//!   weights computed in one pass per pivot — the AMD bound, cheaper than
//!   exact set unions and experimentally just as good;
//! - **supervariable detection / mass elimination**: boundary variables
//!   with identical adjacency (hash-grouped, then exactly compared) merge
//!   into one supervariable that is ordered — and later eliminated — as a
//!   unit;
//! - **aggressive element absorption**: an element whose boundary is
//!   covered by the new pivot's is dropped from the quotient graph;
//! - **assembly-tree postorder**: the final permutation is a postorder of
//!   the element absorption tree, which keeps each subtree's pivots
//!   contiguous (better locality for the numeric sweeps) without changing
//!   the fill bound.
//!
//! The result feeds [`SparseLu::factor_with`](crate::sparse::SparseLu::factor_with)
//! as a static pivot sequence; numeric threshold pivoting stays in the
//! loop as a per-step fallback, so stability is never traded for the
//! pre-order (see [`FillOrdering`]).
//!
//! Everything here is deterministic: ties break on the smallest variable
//! index, iteration orders come from sorted vectors, and the permutation
//! depends only on the input pattern — the same bitwise-reproducibility
//! contract the rest of the solver stack is built on.

use crate::sparse::{CsrMatrix, Scalar};

/// Pivot-ordering strategy for [`SparseLu`](crate::sparse::SparseLu).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FillOrdering {
    /// Greedy Markowitz threshold pivoting chosen during elimination —
    /// the historical default; best on small or near-1-D patterns.
    #[default]
    Markowitz,
    /// Approximate-minimum-degree pre-order ([`amd_order`]) consumed as a
    /// static pivot sequence, with Markowitz threshold pivoting as the
    /// per-step numeric fallback. Wins on 2-D coupling patterns where the
    /// greedy scan's cost and fill both grow.
    Amd,
}

impl FillOrdering {
    /// Parses a CLI-style ordering name.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the accepted values.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "markowitz" => Ok(Self::Markowitz),
            "amd" => Ok(Self::Amd),
            other => Err(format!("unknown fill ordering `{other}` (use amd|markowitz)")),
        }
    }
}

impl std::fmt::Display for FillOrdering {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Markowitz => write!(f, "markowitz"),
            Self::Amd => write!(f, "amd"),
        }
    }
}

/// Lifecycle of a node in the quotient graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeState {
    /// Uneliminated (principal) variable.
    Live,
    /// Eliminated pivot, now an element of the quotient graph.
    Elem,
    /// Nonprincipal variable absorbed into a supervariable.
    Merged,
}

/// Approximate-minimum-degree ordering of `a`'s symmetrized pattern.
///
/// Returns `perm` with `perm[k]` = the original index proposed as the
/// `k`-th pivot; always a valid permutation of `0..a.rows()`. Values are
/// ignored — the ordering is a pure function of the pattern, so it can be
/// computed once per topology and shared.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn amd_order<T: Scalar>(a: &CsrMatrix<T>) -> Vec<usize> {
    assert_eq!(a.rows(), a.cols(), "amd ordering of non-square matrix");
    let n = a.rows();
    if n == 0 {
        return Vec::new();
    }

    // Symmetrized adjacency (pattern of A + Aᵀ, diagonal dropped), sorted
    // so every downstream iteration and comparison is deterministic.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for &j in a.row_cols(i) {
            if i != j {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }

    let mut state = vec![NodeState::Live; n];
    // Supervariable mass (number of original variables represented).
    let mut nv = vec![1usize; n];
    // Original variables absorbed into each principal (flattened).
    let mut absorbed: Vec<Vec<usize>> = vec![Vec::new(); n];
    // E_i: elements adjacent to variable i (chronological by creation, so
    // equal sets imply equal sequences — supervariable comparison relies
    // on this).
    let mut elems: Vec<Vec<usize>> = vec![Vec::new(); n];
    // L_e: boundary variables of element e.
    let mut elem_vars: Vec<Vec<usize>> = vec![Vec::new(); n];
    // Assembly-tree parent of an element (the pivot that absorbed it);
    // MAX while the element is live, or for roots.
    let mut parent = vec![usize::MAX; n];
    let mut degree: Vec<usize> = adj.iter().map(Vec::len).collect();
    // Degree buckets with lazy invalidation: entries are re-pushed on
    // every degree change and validated against the live degree on scan.
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
    for (i, &d) in degree.iter().enumerate() {
        buckets[d].push(i);
    }

    let mut vmark = vec![0usize; n];
    let mut vstamp = 0usize;
    let mut emark = vec![0usize; n];
    let mut estamp = 0usize;
    // Per-step external element weights: w[e] = mass of L_e \ L_p.
    let mut w = vec![0i64; n];
    let mut order: Vec<usize> = Vec::new();
    let mut eliminated_mass = 0usize;

    while eliminated_mass < n {
        // Pivot: minimum approximate degree, smallest index on ties.
        let mut pivot = usize::MAX;
        for d in 0..=n {
            buckets[d].retain(|&i| state[i] == NodeState::Live && degree[i] == d);
            if let Some(&min) = buckets[d].iter().min() {
                pivot = min;
                break;
            }
        }
        debug_assert_ne!(pivot, usize::MAX, "a live variable must remain");
        let p = pivot;
        state[p] = NodeState::Elem;
        order.push(p);
        eliminated_mass += nv[p];

        // L_p = (A_p ∪ ⋃_{e ∈ E_p} L_e) restricted to live variables;
        // every element reached here is absorbed into p (tree edge).
        vstamp += 1;
        vmark[p] = vstamp;
        let mut lp: Vec<usize> = Vec::new();
        for &i in &adj[p] {
            if state[i] == NodeState::Live && vmark[i] != vstamp {
                vmark[i] = vstamp;
                lp.push(i);
            }
        }
        for e in std::mem::take(&mut elems[p]) {
            if state[e] != NodeState::Elem || parent[e] != usize::MAX {
                continue;
            }
            for &i in &elem_vars[e] {
                if state[i] == NodeState::Live && vmark[i] != vstamp {
                    vmark[i] = vstamp;
                    lp.push(i);
                }
            }
            parent[e] = p;
            elem_vars[e] = Vec::new();
        }
        lp.sort_unstable();
        adj[p] = Vec::new();

        // One pass over the boundary computes every adjacent element's
        // external weight w[e] = |L_e \ L_p| (mass-weighted): initialize
        // to |L_e| on first touch (pruning dead boundary entries while
        // there), then subtract each shared variable's mass.
        estamp += 1;
        let mut touched: Vec<usize> = Vec::new();
        for &i in &lp {
            for &e in &elems[i] {
                if state[e] != NodeState::Elem || parent[e] != usize::MAX {
                    continue;
                }
                if emark[e] != estamp {
                    emark[e] = estamp;
                    elem_vars[e].retain(|&v| state[v] == NodeState::Live);
                    w[e] = elem_vars[e].iter().map(|&v| nv[v] as i64).sum();
                    touched.push(e);
                }
                w[e] -= nv[i] as i64;
            }
        }
        // Aggressive absorption: an element whose live boundary is inside
        // L_p adds nothing the new element doesn't.
        for &e in &touched {
            if w[e] <= 0 {
                parent[e] = p;
                elem_vars[e] = Vec::new();
            }
        }

        let lp_mass: i64 = lp.iter().map(|&i| nv[i] as i64).sum();

        // Update every boundary variable: compress its adjacency (L_p
        // members are now reachable through element p), refresh its
        // element list, and recompute the AMD degree bound.
        for &i in &lp {
            adj[i].retain(|&v| state[v] == NodeState::Live && vmark[v] != vstamp);
            elems[i].retain(|&e| state[e] == NodeState::Elem && parent[e] == usize::MAX);
            elems[i].push(p);
            let a_mass: i64 = adj[i].iter().map(|&v| nv[v] as i64).sum();
            let e_mass: i64 = elems[i][..elems[i].len() - 1].iter().map(|&e| w[e].max(0)).sum();
            let d = (a_mass + (lp_mass - nv[i] as i64) + e_mass).clamp(0, n as i64) as usize;
            degree[i] = d;
            buckets[d].push(i);
        }

        // Supervariable detection: boundary variables with identical
        // compressed adjacency are indistinguishable — merge the larger
        // index into the smaller (mass elimination: the merged block is
        // ordered, and later eliminated, as one pivot).
        let mut hashed: Vec<(u64, usize)> = lp
            .iter()
            .filter(|&&i| state[i] == NodeState::Live)
            .map(|&i| {
                let h = adj[i].iter().chain(elems[i].iter()).fold(0x100_0000_01b3u64, |acc, &x| {
                    (acc ^ x as u64).wrapping_mul(0x100_0000_01b3)
                });
                (h, i)
            })
            .collect();
        hashed.sort_unstable();
        let mut run = 0;
        while run < hashed.len() {
            let mut end = run + 1;
            while end < hashed.len() && hashed[end].0 == hashed[run].0 {
                end += 1;
            }
            for a_idx in run..end {
                let i = hashed[a_idx].1;
                if state[i] != NodeState::Live {
                    continue;
                }
                for b_idx in a_idx + 1..end {
                    let j = hashed[b_idx].1;
                    if state[j] != NodeState::Live {
                        continue;
                    }
                    if adj[i] == adj[j] && elems[i] == elems[j] {
                        let mass_j = nv[j];
                        nv[i] += mass_j;
                        nv[j] = 0;
                        state[j] = NodeState::Merged;
                        let mut grand = std::mem::take(&mut absorbed[j]);
                        absorbed[i].push(j);
                        absorbed[i].append(&mut grand);
                        adj[j] = Vec::new();
                        elems[j] = Vec::new();
                        degree[i] = degree[i].saturating_sub(mass_j);
                        buckets[degree[i]].push(i);
                    }
                }
            }
            run = end;
        }

        elem_vars[p] = lp.into_iter().filter(|&i| state[i] == NodeState::Live).collect();
    }

    // Assembly-tree postorder: children (absorbed elements) before
    // parents, subtrees contiguous, children visited in elimination
    // order. Each element expands to its principal variable followed by
    // the variables its supervariable absorbed.
    let mut step_of = vec![usize::MAX; n];
    for (k, &e) in order.iter().enumerate() {
        step_of[e] = k;
    }
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut roots: Vec<usize> = Vec::new();
    for &e in &order {
        if parent[e] == usize::MAX {
            roots.push(e);
        } else {
            children[parent[e]].push(e);
        }
    }
    for c in &mut children {
        c.sort_unstable_by_key(|&e| step_of[e]);
    }
    let mut perm = Vec::with_capacity(n);
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for &r in &roots {
        stack.push((r, 0));
        while let Some(frame) = stack.last_mut() {
            let e = frame.0;
            if frame.1 < children[e].len() {
                let c = children[e][frame.1];
                frame.1 += 1;
                stack.push((c, 0));
            } else {
                stack.pop();
                perm.push(e);
                perm.extend_from_slice(&absorbed[e]);
            }
        }
    }
    debug_assert_eq!(perm.len(), n, "amd ordering must emit every variable exactly once");
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::Triplets;

    fn is_permutation(perm: &[usize], n: usize) -> bool {
        if perm.len() != n {
            return false;
        }
        let mut seen = vec![false; n];
        for &p in perm {
            if p >= n || seen[p] {
                return false;
            }
            seen[p] = true;
        }
        true
    }

    #[test]
    fn empty_and_singleton() {
        let t = Triplets::<f64>::new(0, 0);
        assert!(amd_order(&t.to_csr()).is_empty());
        let mut t = Triplets::new(1, 1);
        t.push(0, 0, 1.0);
        assert_eq!(amd_order(&t.to_csr()), vec![0]);
    }

    #[test]
    fn diagonal_matrix_orders_all_variables() {
        let mut t = Triplets::new(5, 5);
        for i in 0..5 {
            t.push(i, i, 1.0 + i as f64);
        }
        let perm = amd_order(&t.to_csr());
        assert!(is_permutation(&perm, 5));
    }

    #[test]
    fn tridiagonal_orders_endpoints_before_centers() {
        // On a path graph, minimum degree eliminates from the endpoints
        // inward; the center vertex (degree 2 until the very end) must
        // not come first.
        let n = 9;
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0);
        }
        for i in 0..n - 1 {
            t.push(i, i + 1, -1.0);
            t.push(i + 1, i, -1.0);
        }
        let perm = amd_order(&t.to_csr());
        assert!(is_permutation(&perm, n));
        assert_ne!(perm[0], n / 2, "path center cannot be the first pivot");
    }

    #[test]
    fn asymmetric_pattern_is_symmetrized() {
        // Only the upper triangle is stored; the ordering must still see
        // the full (symmetrized) structure and produce a permutation.
        let n = 6;
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 1.0);
        }
        for i in 0..n - 1 {
            t.push(i, i + 1, -1.0);
        }
        t.push(0, n - 1, 0.5);
        let perm = amd_order(&t.to_csr());
        assert!(is_permutation(&perm, n));
    }

    #[test]
    fn star_graph_merges_leaves_into_a_supervariable() {
        // A star: hub adjacent to every leaf. Leaves are indistinguishable
        // after the first elimination step touches them; all of them must
        // still be emitted, and the hub (max degree) cannot lead.
        let n = 8;
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 1.0);
        }
        for leaf in 1..n {
            t.push(0, leaf, -1.0);
            t.push(leaf, 0, -1.0);
        }
        let perm = amd_order(&t.to_csr());
        assert!(is_permutation(&perm, n));
        assert_ne!(perm[0], 0, "the hub has maximum degree");
    }

    #[test]
    fn deterministic_across_calls() {
        let n = 12;
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 3.0);
            t.push(i, (i * 5 + 1) % n, -1.0);
            t.push((i * 7 + 2) % n, i, -1.0);
        }
        let a = t.to_csr();
        let first = amd_order(&a);
        for _ in 0..3 {
            assert_eq!(amd_order(&a), first);
        }
    }
}
