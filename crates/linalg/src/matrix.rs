//! Dense row-major matrix.

use crate::LinalgError;

/// A dense, row-major `rows × cols` matrix of `f64`.
///
/// # Example
///
/// ```
/// use glova_linalg::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(a[(1, 0)], 3.0);
/// assert_eq!(a.mat_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates the `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// Builds a matrix by evaluating `f(i, j)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row {i} out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable access to row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row {i} out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies every entry from an equally sized matrix without
    /// reallocating — the restamp primitive of the MNA assembly cache.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn copy_from(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "copy_from shape mismatch");
        self.data.copy_from_slice(&other.data);
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn mat_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "mat_vec dimension mismatch");
        (0..self.rows).map(|i| crate::vector::dot(self.row(i), x)).collect()
    }

    /// Matrix–vector product `A x` into a caller-provided buffer —
    /// allocation-free variant for iteration hot loops.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `out.len() != rows`.
    pub fn mat_vec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "mat_vec dimension mismatch");
        assert_eq!(out.len(), self.rows, "mat_vec output length mismatch");
        for (i, o) in out.iter_mut().enumerate() {
            *o = crate::vector::dot(self.row(i), x);
        }
    }

    /// Matrix–matrix product `A B`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `self.cols != b.rows`.
    pub fn mat_mul(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != b.rows {
            return Err(LinalgError::DimensionMismatch { context: "mat_mul" });
        }
        let mut out = Matrix::zeros(self.rows, b.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..b.cols {
                    out[(i, j)] += aik * b[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Adds `value` to every diagonal entry (in place). Used for GP jitter
    /// and MNA `gmin` regularization.
    pub fn add_diagonal(&mut self, value: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += value;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry; `0.0` for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |acc, v| acc.max(v.abs()))
    }

    /// Cholesky factorization `A = L Lᵀ` with additive `jitter` on the
    /// diagonal.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] if a pivot is not
    /// strictly positive, and [`LinalgError::DimensionMismatch`] if the
    /// matrix is not square.
    pub fn cholesky(&self, jitter: f64) -> Result<crate::Cholesky, LinalgError> {
        crate::Cholesky::factor(self, jitter)
    }

    /// LU factorization with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] for singular matrices and
    /// [`LinalgError::DimensionMismatch`] if the matrix is not square.
    pub fn lu(&self) -> Result<crate::Lu, LinalgError> {
        crate::Lu::factor(self)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.4e} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_mat_vec_is_identity() {
        let eye = Matrix::identity(3);
        let x = vec![1.0, -2.0, 3.0];
        assert_eq!(eye.mat_vec(&x), x);
    }

    #[test]
    fn mat_mul_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.mat_mul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn mat_mul_dimension_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(a.mat_mul(&b), Err(LinalgError::DimensionMismatch { .. })));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn add_diagonal_only_touches_diagonal() {
        let mut a = Matrix::zeros(2, 2);
        a.add_diagonal(3.0);
        assert_eq!(a, Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 3.0]]));
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert_eq!(a.frobenius_norm(), 5.0);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn empty_matrix_is_fine() {
        let a = Matrix::from_rows(&[]);
        assert_eq!(a.rows(), 0);
        assert_eq!(a.max_abs(), 0.0);
    }

    #[test]
    fn display_contains_entries() {
        let a = Matrix::identity(2);
        let s = format!("{a}");
        assert!(s.contains("1.0000e0"));
    }

    proptest! {
        #[test]
        fn prop_transpose_preserves_frobenius(
            entries in proptest::collection::vec(-1e3f64..1e3, 12)
        ) {
            let a = Matrix::from_fn(3, 4, |i, j| entries[i * 4 + j]);
            prop_assert!((a.frobenius_norm() - a.transpose().frobenius_norm()).abs() < 1e-9);
        }

        #[test]
        fn prop_matvec_linearity(
            entries in proptest::collection::vec(-1e2f64..1e2, 9),
            x in proptest::collection::vec(-1e2f64..1e2, 3),
            y in proptest::collection::vec(-1e2f64..1e2, 3),
        ) {
            let a = Matrix::from_fn(3, 3, |i, j| entries[i * 3 + j]);
            let lhs = a.mat_vec(&crate::vector::add(&x, &y));
            let rhs = crate::vector::add(&a.mat_vec(&x), &a.mat_vec(&y));
            for (l, r) in lhs.iter().zip(&rhs) {
                prop_assert!((l - r).abs() < 1e-6);
            }
        }
    }
}
