//! Cholesky factorization for symmetric positive-definite matrices.
//!
//! The Gaussian-process surrogate in `glova-turbo` factors its kernel matrix
//! once per fit and then solves against many right-hand sides (posterior
//! means, Thompson samples) and needs the log-determinant for the marginal
//! likelihood — exactly the [`Cholesky`] API here.

use crate::{LinalgError, Matrix};

/// The lower-triangular Cholesky factor `L` of `A + jitter·I = L Lᵀ`.
#[derive(Debug, Clone, PartialEq)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// `jitter` is added to the diagonal before factorization; Gaussian
    /// process kernels are routinely near-singular and a `1e-8`-scale jitter
    /// keeps them factorable without visibly changing the posterior.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::DimensionMismatch`] if `a` is not square.
    /// - [`LinalgError::NotPositiveDefinite`] if a pivot is `<= 0`.
    pub fn factor(a: &Matrix, jitter: f64) -> Result<Self, LinalgError> {
        if a.rows() != a.cols() {
            return Err(LinalgError::DimensionMismatch {
                context: "cholesky of non-square matrix",
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)] + if i == j { jitter } else { 0.0 };
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite { index: i, pivot: sum });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Self { l })
    }

    /// The lower-triangular factor `L`.
    pub fn factor_matrix(&self) -> &Matrix {
        &self.l
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `A x = b` via forward/backward substitution.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let y = self.solve_lower(b);
        self.solve_lower_transpose(&y)
    }

    /// Solves `L y = b` (forward substitution).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "rhs length mismatch");
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * y[k];
            }
            y[i] = sum / self.l[(i, i)];
        }
        y
    }

    /// Solves `Lᵀ x = y` (backward substitution).
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != dim()`.
    pub fn solve_lower_transpose(&self, y: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(y.len(), n, "rhs length mismatch");
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in i + 1..n {
                sum -= self.l[(k, i)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
        x
    }

    /// `log |A|` computed from the factor (numerically stable).
    pub fn log_determinant(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Applies `L` to a vector: `L v`. Used to draw correlated Gaussian
    /// samples (`x = µ + L z` with `z ~ N(0, I)`).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != dim()`.
    pub fn lower_mat_vec(&self, v: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(v.len(), n, "vector length mismatch");
        (0..n).map(|i| (0..=i).map(|k| self.l[(i, k)] * v[k]).sum()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn spd_from_seedlike(entries: &[f64], n: usize) -> Matrix {
        // A = B Bᵀ + n·I is SPD for any B.
        let b = Matrix::from_fn(n, n, |i, j| entries[i * n + j]);
        let mut a = b.mat_mul(&b.transpose()).unwrap();
        a.add_diagonal(n as f64);
        a
    }

    #[test]
    fn factor_known_matrix() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let chol = Cholesky::factor(&a, 0.0).unwrap();
        let l = chol.factor_matrix();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 1.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn solve_recovers_rhs() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.2], &[0.5, 0.2, 2.0]]);
        let chol = a.cholesky(0.0).unwrap();
        let x = chol.solve(&[1.0, -2.0, 0.5]);
        let b = a.mat_vec(&x);
        assert!((b[0] - 1.0).abs() < 1e-10);
        assert!((b[1] + 2.0).abs() < 1e-10);
        assert!((b[2] - 0.5).abs() < 1e-10);
    }

    #[test]
    fn log_det_matches_direct() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        // |A| = 12 - 4 = 8
        let chol = a.cholesky(0.0).unwrap();
        assert!((chol.log_determinant() - 8.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn not_positive_definite_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        match Cholesky::factor(&a, 0.0) {
            Err(LinalgError::NotPositiveDefinite { index, .. }) => assert_eq!(index, 1),
            other => panic!("expected NotPositiveDefinite, got {other:?}"),
        }
    }

    #[test]
    fn jitter_rescues_semidefinite() {
        // Rank-1 matrix: PSD but not PD.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        assert!(Cholesky::factor(&a, 0.0).is_err());
        assert!(Cholesky::factor(&a, 1e-8).is_ok());
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(Cholesky::factor(&a, 0.0), Err(LinalgError::DimensionMismatch { .. })));
    }

    #[test]
    fn lower_mat_vec_reconstructs() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let chol = a.cholesky(0.0).unwrap();
        // L (Lᵀ x) = A x
        let x = [1.0, 2.0];
        let ltx = {
            let l = chol.factor_matrix();
            vec![l[(0, 0)] * x[0] + l[(1, 0)] * x[1], l[(1, 1)] * x[1]]
        };
        let ax = chol.lower_mat_vec(&ltx);
        let expect = a.mat_vec(&x);
        assert!((ax[0] - expect[0]).abs() < 1e-12);
        assert!((ax[1] - expect[1]).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_reconstruction(
            entries in proptest::collection::vec(-2.0f64..2.0, 16),
            rhs in proptest::collection::vec(-10.0f64..10.0, 4),
        ) {
            let a = spd_from_seedlike(&entries, 4);
            let chol = Cholesky::factor(&a, 0.0).unwrap();
            // L Lᵀ == A
            let l = chol.factor_matrix();
            let recon = l.mat_mul(&l.transpose()).unwrap();
            for i in 0..4 {
                for j in 0..4 {
                    prop_assert!((recon[(i, j)] - a[(i, j)]).abs() < 1e-8 * (1.0 + a.max_abs()));
                }
            }
            // solve residual
            let x = chol.solve(&rhs);
            let back = a.mat_vec(&x);
            for (bi, ri) in back.iter().zip(&rhs) {
                prop_assert!((bi - ri).abs() < 1e-6 * (1.0 + ri.abs()));
            }
        }

        #[test]
        fn prop_logdet_positive_for_diagonally_dominant(
            diag in proptest::collection::vec(2.0f64..10.0, 3)
        ) {
            let mut a = Matrix::zeros(3, 3);
            for i in 0..3 {
                a[(i, i)] = diag[i];
            }
            let chol = a.cholesky(0.0).unwrap();
            let expect: f64 = diag.iter().map(|d| d.ln()).sum();
            prop_assert!((chol.log_determinant() - expect).abs() < 1e-9);
        }
    }
}
