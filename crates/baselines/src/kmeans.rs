//! Lloyd's k-means with k-means++ initialization.
//!
//! RobustAnalog clusters PVT corners by their recent reward signatures to
//! pick the dominant corner of each cluster; the feature vectors are tiny
//! (tens of corners × a few features), so a simple dense implementation
//! is plenty.

use rand::Rng;

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KmeansResult {
    /// Cluster index of every input point.
    pub assignments: Vec<usize>,
    /// Cluster centroids.
    pub centroids: Vec<Vec<f64>>,
}

/// Clusters `points` into `k` groups (Lloyd's algorithm, k-means++ seeds,
/// at most `max_iters` refinement rounds).
///
/// If `k >= points.len()`, every point gets its own cluster.
///
/// # Panics
///
/// Panics if `points` is empty, `k == 0`, or points have inconsistent
/// dimensions.
pub fn kmeans<R: Rng + ?Sized>(
    points: &[Vec<f64>],
    k: usize,
    max_iters: usize,
    rng: &mut R,
) -> KmeansResult {
    assert!(!points.is_empty(), "kmeans needs at least one point");
    assert!(k > 0, "kmeans needs at least one cluster");
    let dim = points[0].len();
    assert!(points.iter().all(|p| p.len() == dim), "ragged points");

    if k >= points.len() {
        return KmeansResult {
            assignments: (0..points.len()).collect(),
            centroids: points.to_vec(),
        };
    }

    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    while centroids.len() < k {
        let dists: Vec<f64> = points
            .iter()
            .map(|p| centroids.iter().map(|c| dist2(p, c)).fold(f64::INFINITY, f64::min))
            .collect();
        let total: f64 = dists.iter().sum();
        if total <= 0.0 {
            // All points coincide with centroids; duplicate one.
            centroids.push(points[rng.gen_range(0..points.len())].clone());
            continue;
        }
        let mut threshold = rng.gen::<f64>() * total;
        let mut chosen = points.len() - 1;
        for (i, d) in dists.iter().enumerate() {
            threshold -= d;
            if threshold <= 0.0 {
                chosen = i;
                break;
            }
        }
        centroids.push(points[chosen].clone());
    }

    let mut assignments = vec![0usize; points.len()];
    for _ in 0..max_iters {
        // Assignment step.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let nearest = centroids
                .iter()
                .enumerate()
                .min_by(|a, b| dist2(p, a.1).partial_cmp(&dist2(p, b.1)).expect("finite"))
                .map(|(ci, _)| ci)
                .expect("k > 0");
            if assignments[i] != nearest {
                assignments[i] = nearest;
                changed = true;
            }
        }
        // Update step.
        for (ci, centroid) in centroids.iter_mut().enumerate() {
            let members: Vec<&Vec<f64>> =
                points.iter().zip(&assignments).filter(|(_, &a)| a == ci).map(|(p, _)| p).collect();
            if members.is_empty() {
                continue;
            }
            for d in 0..dim {
                centroid[d] = members.iter().map(|m| m[d]).sum::<f64>() / members.len() as f64;
            }
        }
        if !changed {
            break;
        }
    }
    KmeansResult { assignments, centroids }
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use glova_stats::rng::seeded;

    #[test]
    fn separates_two_obvious_clusters() {
        let mut points = Vec::new();
        for i in 0..10 {
            points.push(vec![0.0 + i as f64 * 0.01, 0.0]);
            points.push(vec![5.0 + i as f64 * 0.01, 5.0]);
        }
        let mut rng = seeded(1);
        let result = kmeans(&points, 2, 50, &mut rng);
        // All even indices together, all odd together.
        let c0 = result.assignments[0];
        let c1 = result.assignments[1];
        assert_ne!(c0, c1);
        for (i, &a) in result.assignments.iter().enumerate() {
            assert_eq!(a, if i % 2 == 0 { c0 } else { c1 }, "point {i}");
        }
    }

    #[test]
    fn k_equal_n_gives_identity() {
        let points = vec![vec![1.0], vec![2.0], vec![3.0]];
        let mut rng = seeded(2);
        let result = kmeans(&points, 3, 10, &mut rng);
        assert_eq!(result.assignments, vec![0, 1, 2]);
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let points = vec![vec![0.0], vec![2.0], vec![4.0]];
        let mut rng = seeded(3);
        let result = kmeans(&points, 1, 10, &mut rng);
        assert!(result.assignments.iter().all(|&a| a == 0));
        assert!((result.centroids[0][0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn identical_points_do_not_crash() {
        let points = vec![vec![1.0, 1.0]; 8];
        let mut rng = seeded(4);
        let result = kmeans(&points, 3, 10, &mut rng);
        assert_eq!(result.assignments.len(), 8);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_panics() {
        let mut rng = seeded(5);
        kmeans(&[], 2, 10, &mut rng);
    }
}
