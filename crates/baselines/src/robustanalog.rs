//! RobustAnalog baseline (the paper's ref \[8\]).
//!
//! Multi-task RL over PVT corners with three defining differences from
//! GLOVA (and one from PVTSizing):
//!
//! - **random** initial sampling — no TuRBO (the limitation PVTSizing was
//!   built to fix; the GLOVA paper calls out the resulting sample
//!   efficiency and success-rate gap);
//! - corners are treated as tasks and **clustered with k-means** on their
//!   recent reward signatures; each iteration simulates only the dominant
//!   (worst) corner of every cluster;
//! - risk-neutral critic; verification without µ-σ or reordering.

use crate::kmeans::kmeans;
use glova::engine::EngineSpec;
use glova::problem::SizingProblem;
use glova::report::RunResult;
use glova::verification::Verifier;
use glova_circuits::spec::SATISFIED_REWARD;
use glova_circuits::Circuit;
use glova_rl::{AgentConfig, RiskSensitiveAgent};
use glova_stats::reduce::finite_worst;
use glova_stats::rng::forked;
use glova_variation::config::VerificationMethod;
use rand::Rng;
use std::sync::Arc;
use std::time::Instant;

/// RobustAnalog configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustAnalogConfig {
    /// Verification method (Table I).
    pub method: VerificationMethod,
    /// Random initial-sampling budget (replaces TuRBO).
    pub random_budget: usize,
    /// Number of initial designs carried into the RL phase.
    pub n_initial_designs: usize,
    /// Maximum RL iterations.
    pub max_iterations: usize,
    /// Number of corner clusters (dominant corners per iteration).
    pub n_clusters: usize,
    /// Re-cluster every this many iterations.
    pub recluster_every: usize,
    /// Hidden widths of the actor/critic networks.
    pub hidden: Vec<usize>,
    /// Gradient updates per iteration.
    pub updates_per_step: usize,
    /// Evaluation engine for simulation batches.
    pub engine: EngineSpec,
}

impl RobustAnalogConfig {
    /// Defaults mirroring the published description.
    pub fn new(method: VerificationMethod) -> Self {
        Self {
            method,
            random_budget: 150,
            n_initial_designs: 3,
            max_iterations: 500,
            n_clusters: 4,
            recluster_every: 25,
            hidden: vec![64, 64, 64],
            updates_per_step: 8,
            engine: EngineSpec::Sequential,
        }
    }
}

/// The RobustAnalog optimizer.
#[derive(Debug)]
pub struct RobustAnalog {
    problem: SizingProblem,
    config: RobustAnalogConfig,
}

impl RobustAnalog {
    /// Creates an optimizer for `circuit`.
    pub fn new(circuit: Arc<dyn Circuit>, config: RobustAnalogConfig) -> Self {
        let problem = SizingProblem::with_engine(circuit, config.method, config.engine.build());
        Self { problem, config }
    }

    /// The underlying problem.
    pub fn problem(&self) -> &SizingProblem {
        &self.problem
    }

    /// Runs one sizing campaign.
    pub fn run(&mut self, seed: u64) -> RunResult {
        let start = Instant::now();
        self.problem.reset_simulations();
        let mut init_rng = forked(seed, 21);
        let mut agent_rng = forked(seed, 22);
        let mut sample_rng = forked(seed, 23);

        let dim = self.problem.dim();
        let corners = self.problem.config().corners.clone();
        let n_corners = corners.len();
        let n_prime = self.problem.config().optim_samples;

        // Random initial sampling (the defining weakness vs TuRBO).
        let mut evaluated: Vec<(Vec<f64>, f64)> = Vec::new();
        for _ in 0..self.config.random_budget {
            let x: Vec<f64> = (0..dim).map(|_| init_rng.gen()).collect();
            let reward = finite_worst(self.problem.simulate_typical(&x).reward);
            let feasible = reward == SATISFIED_REWARD;
            evaluated.push((x, reward));
            if feasible
                && evaluated.iter().filter(|(_, r)| *r == SATISFIED_REWARD).count()
                    >= self.config.n_initial_designs
            {
                break;
            }
        }
        evaluated.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite rewards"));
        let initial: Vec<Vec<f64>> =
            evaluated.iter().take(self.config.n_initial_designs).map(|(x, _)| x.clone()).collect();

        // Risk-neutral agent.
        let agent_config = AgentConfig {
            ensemble_size: 1,
            hidden: self.config.hidden.clone(),
            updates_per_step: self.config.updates_per_step,
            ..AgentConfig::new(dim)
        };
        let mut agent = RiskSensitiveAgent::new(agent_config, &mut agent_rng);

        // Per-corner reward signature of the incumbent (feature vectors for
        // clustering) — refreshed on every full sweep.
        let mut corner_rewards = vec![0.0f64; n_corners];
        let mut incumbent: Option<(Vec<f64>, f64)> = None;
        for x in &initial {
            let mut worst = f64::INFINITY;
            for (ci, corner) in corners.iter().enumerate() {
                let conditions = self.problem.sample_conditions(x, n_prime, &mut sample_rng);
                let (_, corner_worst) = self.problem.simulate_conditions(x, corner, &conditions);
                let corner_worst = finite_worst(corner_worst);
                corner_rewards[ci] = corner_worst;
                worst = worst.min(corner_worst);
            }
            agent.observe(x.clone(), worst);
            if incumbent.as_ref().is_none_or(|(_, r)| worst > *r) {
                incumbent = Some((x.clone(), worst));
            }
        }
        let mut x_last =
            incumbent.as_ref().map(|(x, _)| x.clone()).unwrap_or_else(|| vec![0.5; dim]);
        agent.pretrain_actor_towards(&x_last.clone(), 200, &mut agent_rng);

        let mut dominant = self.cluster_dominant(&corner_rewards, &mut sample_rng);
        let mut verification_attempts = 0usize;
        let mut stagnation = 0usize;
        for iteration in 1..=self.config.max_iterations {
            if let Some((best, _)) = &incumbent {
                x_last = best.clone();
            }
            let mut x_new = agent.propose(&x_last, &mut agent_rng);
            for (v, anchor) in x_new.iter_mut().zip(&x_last) {
                *v = v.clamp((anchor - 0.2).max(0.0), (anchor + 0.2).min(1.0));
            }

            // Simulate only the dominant corner of each cluster.
            let mut worst_reward = f64::INFINITY;
            for &ci in &dominant {
                let corner = corners.corner(ci);
                let conditions = self.problem.sample_conditions(&x_new, n_prime, &mut sample_rng);
                let (_, corner_worst) =
                    self.problem.simulate_conditions(&x_new, &corner, &conditions);
                let corner_worst = finite_worst(corner_worst);
                corner_rewards[ci] = corner_worst;
                worst_reward = worst_reward.min(corner_worst);
            }

            // Note: failed verifications do NOT feed the stored reward —
            // the published RobustAnalog trains only on its task-sampled
            // rewards. Verification data does refresh the per-corner
            // signature (its multi-task clustering input), which is how it
            // eventually discovers the failing corner.
            if worst_reward == SATISFIED_REWARD {
                verification_attempts += 1;
                let verifier =
                    Verifier::new(&self.problem, 4.0).without_mu_sigma().without_reordering();
                let hint: Vec<usize> = (0..n_corners).collect();
                let outcome = verifier.verify(&x_new, &hint, None, &mut sample_rng);
                for &(ci, worst) in &outcome.per_corner_worst {
                    corner_rewards[ci] = finite_worst(worst);
                }
                if outcome.passed {
                    return RunResult {
                        success: true,
                        rl_iterations: iteration,
                        simulations: self.problem.simulations(),
                        verification_attempts,
                        wall_time: start.elapsed(),
                        final_design: Some(x_new),
                        trace: Vec::new(),
                    };
                }
            }

            agent.observe(x_new.clone(), worst_reward);
            if incumbent.as_ref().is_none_or(|(_, r)| worst_reward > *r) {
                incumbent = Some((x_new.clone(), worst_reward));
                stagnation = 0;
            } else {
                stagnation += 1;
                if stagnation >= 60 {
                    agent.reset_noise(0.12);
                    stagnation = 0;
                }
            }
            agent.set_proximal_target(incumbent.as_ref().map(|(x, _)| x.clone()));
            agent.train_step(&mut agent_rng);

            if iteration % self.config.recluster_every == 0 {
                dominant = self.cluster_dominant(&corner_rewards, &mut sample_rng);
            }
        }

        let mut result = RunResult::failed(
            self.config.max_iterations,
            self.problem.simulations(),
            start.elapsed(),
        );
        result.verification_attempts = verification_attempts;
        result
    }

    /// Clusters corners by reward signature; returns the worst corner of
    /// each cluster (the "dominant corners").
    fn cluster_dominant(
        &self,
        corner_rewards: &[f64],
        rng: &mut glova_stats::rng::Rng64,
    ) -> Vec<usize> {
        let corners = &self.problem.config().corners;
        // Feature: (reward, normalized vdd, normalized temp, process skews).
        let points: Vec<Vec<f64>> = corners
            .iter()
            .zip(corner_rewards)
            .map(|(c, &r)| {
                vec![
                    r,
                    (c.vdd - 0.85) * 10.0,
                    c.temp_c / 120.0,
                    c.process.nmos_skew() * 0.5,
                    c.process.pmos_skew() * 0.5,
                ]
            })
            .collect();
        let k = self.config.n_clusters.min(points.len());
        let clusters = kmeans(&points, k, 30, rng);
        let mut dominant = Vec::with_capacity(k);
        for cluster in 0..k {
            let worst = clusters
                .assignments
                .iter()
                .enumerate()
                .filter(|(_, &a)| a == cluster)
                .min_by(|a, b| {
                    corner_rewards[a.0].partial_cmp(&corner_rewards[b.0]).expect("finite rewards")
                })
                .map(|(i, _)| i);
            if let Some(ci) = worst {
                dominant.push(ci);
            }
        }
        dominant.sort_unstable();
        dominant.dedup();
        dominant
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glova_circuits::ToyQuadratic;

    fn toy() -> Arc<dyn Circuit> {
        Arc::new(ToyQuadratic::standard().with_mismatch_sensitivity(0.05))
    }

    fn quick_config(method: VerificationMethod) -> RobustAnalogConfig {
        let mut c = RobustAnalogConfig::new(method);
        c.hidden = vec![32, 32];
        c.updates_per_step = 4;
        c.max_iterations = 200;
        c.random_budget = 150;
        c
    }

    #[test]
    fn solves_toy_under_corner_verification() {
        let mut opt = RobustAnalog::new(toy(), quick_config(VerificationMethod::Corner));
        let result = opt.run(3);
        assert!(result.success, "failed: {result}");
    }

    #[test]
    fn simulates_only_dominant_corners_per_iteration() {
        // With 4 clusters over 30 corners, each iteration costs about
        // 4 × N' sims — far fewer than PVTSizing's 30 × N'.
        let mut config = quick_config(VerificationMethod::Corner);
        config.max_iterations = 10;
        config.random_budget = 10;
        let mut opt = RobustAnalog::new(toy(), config);
        let result = opt.run(999);
        if !result.success {
            // init 10 + 3×30 + ~10 iterations × ≤5 corners.
            assert!(result.simulations < (10 + 90 + 10 * 6) as u64 + 50);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let r1 = RobustAnalog::new(toy(), quick_config(VerificationMethod::Corner)).run(7);
        let r2 = RobustAnalog::new(toy(), quick_config(VerificationMethod::Corner)).run(7);
        assert_eq!(r1.rl_iterations, r2.rl_iterations);
        assert_eq!(r1.simulations, r2.simulations);
    }
}
