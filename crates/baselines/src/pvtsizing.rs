//! PVTSizing baseline (the paper's ref \[9\]).
//!
//! Shares TuRBO initial sampling with GLOVA but differs in exactly the
//! ways Table II measures:
//!
//! - every RL iteration simulates **all** PVT corners (`k × N'`
//!   simulations per iteration instead of GLOVA's `N'`);
//! - the critic is risk-neutral (a single model — no ensemble bound);
//! - full verification is attempted whenever all sampled conditions pass,
//!   with **no µ-σ gate and no simulation reordering**.

use glova::engine::EngineSpec;
use glova::problem::SizingProblem;
use glova::report::RunResult;
use glova::verification::Verifier;
use glova_circuits::spec::SATISFIED_REWARD;
use glova_circuits::Circuit;
use glova_rl::{AgentConfig, RiskSensitiveAgent};
use glova_stats::reduce::finite_worst;
use glova_stats::rng::forked;
use glova_turbo::{Turbo, TurboConfig};
use glova_variation::config::VerificationMethod;
use std::sync::Arc;
use std::time::Instant;

/// PVTSizing configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PvtSizingConfig {
    /// Verification method (Table I).
    pub method: VerificationMethod,
    /// TuRBO evaluation budget for initial sampling.
    pub turbo_budget: usize,
    /// Number of initial designs carried into the RL phase.
    pub n_initial_designs: usize,
    /// Maximum RL iterations.
    pub max_iterations: usize,
    /// Hidden widths of the actor/critic networks.
    pub hidden: Vec<usize>,
    /// Gradient updates per iteration.
    pub updates_per_step: usize,
    /// Evaluation engine for simulation batches.
    pub engine: EngineSpec,
}

impl PvtSizingConfig {
    /// Defaults mirroring GLOVA's hyperparameters where shared.
    pub fn new(method: VerificationMethod) -> Self {
        Self {
            method,
            turbo_budget: 150,
            n_initial_designs: 3,
            max_iterations: 500,
            hidden: vec![64, 64, 64],
            updates_per_step: 8,
            engine: EngineSpec::Sequential,
        }
    }
}

/// The PVTSizing optimizer.
#[derive(Debug)]
pub struct PvtSizing {
    problem: SizingProblem,
    config: PvtSizingConfig,
}

impl PvtSizing {
    /// Creates an optimizer for `circuit`.
    pub fn new(circuit: Arc<dyn Circuit>, config: PvtSizingConfig) -> Self {
        let problem = SizingProblem::with_engine(circuit, config.method, config.engine.build());
        Self { problem, config }
    }

    /// The underlying problem.
    pub fn problem(&self) -> &SizingProblem {
        &self.problem
    }

    /// Runs one sizing campaign.
    pub fn run(&mut self, seed: u64) -> RunResult {
        let start = Instant::now();
        self.problem.reset_simulations();
        let mut turbo_rng = forked(seed, 11);
        let mut agent_rng = forked(seed, 12);
        let mut sample_rng = forked(seed, 13);

        let dim = self.problem.dim();
        let corners = self.problem.config().corners.clone();
        let n_prime = self.problem.config().optim_samples;

        // TuRBO initial sampling at the typical condition (same as GLOVA).
        let mut turbo = Turbo::new(TurboConfig::new(dim), &mut turbo_rng);
        let mut evaluated: Vec<(Vec<f64>, f64)> = Vec::new();
        let mut feasible: Vec<Vec<f64>> = Vec::new();
        for _ in 0..self.config.turbo_budget {
            let x = turbo.ask(&mut turbo_rng);
            let reward = finite_worst(self.problem.simulate_typical(&x).reward);
            turbo.tell(x.clone(), reward);
            evaluated.push((x.clone(), reward));
            if reward == SATISFIED_REWARD {
                feasible.push(x);
                if feasible.len() >= self.config.n_initial_designs {
                    break;
                }
            }
        }
        evaluated.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite rewards"));
        let mut initial = feasible;
        for (x, _) in &evaluated {
            if initial.len() >= self.config.n_initial_designs {
                break;
            }
            if !initial.iter().any(|e| e == x) {
                initial.push(x.clone());
            }
        }

        // Risk-neutral agent: single critic base model.
        let agent_config = AgentConfig {
            ensemble_size: 1,
            hidden: self.config.hidden.clone(),
            updates_per_step: self.config.updates_per_step,
            ..AgentConfig::new(dim)
        };
        let mut agent = RiskSensitiveAgent::new(agent_config, &mut agent_rng);

        let mut incumbent: Option<(Vec<f64>, f64)> = None;
        for x in &initial {
            let worst = self.evaluate_all_corners(x, n_prime, &mut sample_rng);
            agent.observe(x.clone(), worst);
            if incumbent.as_ref().is_none_or(|(_, r)| worst > *r) {
                incumbent = Some((x.clone(), worst));
            }
        }
        let mut x_last =
            incumbent.as_ref().map(|(x, _)| x.clone()).unwrap_or_else(|| vec![0.5; dim]);
        agent.pretrain_actor_towards(&x_last.clone(), 200, &mut agent_rng);

        let mut verification_attempts = 0usize;
        let mut stagnation = 0usize;
        for iteration in 1..=self.config.max_iterations {
            if let Some((best, _)) = &incumbent {
                x_last = best.clone();
            }
            let mut x_new = agent.propose(&x_last, &mut agent_rng);
            for (v, anchor) in x_new.iter_mut().zip(&x_last) {
                *v = v.clamp((anchor - 0.2).max(0.0), (anchor + 0.2).min(1.0));
            }

            // Batch sampling: every corner, every iteration.
            let worst_reward = self.evaluate_all_corners(&x_new, n_prime, &mut sample_rng);

            // Verification gate: all sampled conditions feasible. Note:
            // unlike GLOVA, failed verifications do NOT feed back into the
            // stored reward — the published PVTSizing trains only on its
            // own batch-sampled rewards, which is exactly the inefficiency
            // the paper's µ-σ machinery addresses.
            if worst_reward == SATISFIED_REWARD {
                verification_attempts += 1;
                let verifier =
                    Verifier::new(&self.problem, 4.0).without_mu_sigma().without_reordering();
                let hint: Vec<usize> = (0..corners.len()).collect();
                let outcome = verifier.verify(&x_new, &hint, None, &mut sample_rng);
                if outcome.passed {
                    return RunResult {
                        success: true,
                        rl_iterations: iteration,
                        simulations: self.problem.simulations(),
                        verification_attempts,
                        wall_time: start.elapsed(),
                        final_design: Some(x_new),
                        trace: Vec::new(),
                    };
                }
            }

            agent.observe(x_new.clone(), worst_reward);
            if incumbent.as_ref().is_none_or(|(_, r)| worst_reward > *r) {
                incumbent = Some((x_new.clone(), worst_reward));
                stagnation = 0;
            } else {
                stagnation += 1;
                if stagnation >= 60 {
                    agent.reset_noise(0.12);
                    stagnation = 0;
                }
            }
            agent.set_proximal_target(incumbent.as_ref().map(|(x, _)| x.clone()));
            agent.train_step(&mut agent_rng);
        }

        let mut result = RunResult::failed(
            self.config.max_iterations,
            self.problem.simulations(),
            start.elapsed(),
        );
        result.verification_attempts = verification_attempts;
        result
    }

    /// Simulates `x` on **every** corner with `n_prime` sampled conditions
    /// each; returns the overall worst reward.
    fn evaluate_all_corners(
        &self,
        x: &[f64],
        n_prime: usize,
        rng: &mut glova_stats::rng::Rng64,
    ) -> f64 {
        let mut worst = f64::INFINITY;
        for corner in self.problem.config().corners.clone().iter() {
            let conditions = self.problem.sample_conditions(x, n_prime, rng);
            let (_, corner_worst) = self.problem.simulate_conditions(x, corner, &conditions);
            worst = worst.min(finite_worst(corner_worst));
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glova_circuits::ToyQuadratic;

    fn toy() -> Arc<dyn Circuit> {
        Arc::new(ToyQuadratic::standard().with_mismatch_sensitivity(0.05))
    }

    #[test]
    fn solves_toy_under_corner_verification() {
        let mut config = PvtSizingConfig::new(VerificationMethod::Corner);
        config.hidden = vec![32, 32];
        config.updates_per_step = 4;
        config.max_iterations = 100;
        config.turbo_budget = 100;
        let mut opt = PvtSizing::new(toy(), config);
        let result = opt.run(3);
        assert!(result.success, "failed: {result}");
    }

    #[test]
    fn uses_more_simulations_per_iteration_than_glova() {
        // PVTSizing simulates all corners per iteration; with 30 corners
        // and N' = 1 (corner method) each RL iteration costs 30 sims.
        let mut config = PvtSizingConfig::new(VerificationMethod::Corner);
        config.hidden = vec![16];
        config.updates_per_step = 1;
        config.max_iterations = 5;
        config.turbo_budget = 5;
        let mut opt = PvtSizing::new(toy(), config);
        let result = opt.run(999); // hard seed: likely fails in 5 iters
                                   // 5 turbo + 3 × 30 init + 5 × 30 iterations minimum (if no verification)
        assert!(result.simulations >= (5 + 3 * 30 + 5 * 30) as u64 - 60);
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let mut config = PvtSizingConfig::new(VerificationMethod::Corner);
            config.hidden = vec![16, 16];
            config.max_iterations = 20;
            config.turbo_budget = 40;
            PvtSizing::new(toy(), config)
        };
        let r1 = mk().run(5);
        let r2 = mk().run(5);
        assert_eq!(r1.rl_iterations, r2.rl_iterations);
        assert_eq!(r1.simulations, r2.simulations);
    }
}
