//! Baseline variation-aware sizing frameworks — the comparison points of
//! the paper's Table II.
//!
//! Both are reimplemented from their published descriptions (closed
//! source; see `DESIGN.md` §2):
//!
//! - [`PvtSizing`] — *"PVTSizing: a TuRBO-RL-based batch-sampling
//!   optimization framework for PVT-robust analog circuit synthesis"*
//!   (DAC 2024, the paper's ref \[9\]). TuRBO initial sampling like GLOVA,
//!   but every RL iteration simulates **all** PVT corners (batch
//!   sampling), the critic is risk-neutral, and verification has neither
//!   the µ-σ gate nor simulation reordering.
//! - [`RobustAnalog`] — *"RobustAnalog: fast variation-aware analog
//!   circuit design via multi-task RL"* (MLCAD 2022, ref \[8\]).
//!   **Random** initial sampling; corners are treated as tasks and
//!   clustered with k-means so only dominant corners are simulated each
//!   iteration; risk-neutral critic; no µ-σ, no reordering.
//!
//! Both reuse the workspace's simulation, agent and verification
//! machinery so that Table II differences come from the *algorithms*, not
//! implementation quality.

pub mod kmeans;
pub mod pvtsizing;
pub mod robustanalog;

pub use kmeans::kmeans;
pub use pvtsizing::PvtSizing;
pub use robustanalog::RobustAnalog;
