//! Offline stand-in for the subset of the `criterion` crate used by the
//! GLOVA bench harnesses.
//!
//! The real `criterion` is unavailable in the offline build environment.
//! This shim keeps the `benches/` targets compiling and useful: each
//! benchmark routine is timed over a configurable number of samples and a
//! `name: median / mean / min` line is printed. Statistical analysis,
//! HTML reports and regression detection are out of scope.
//!
//! When invoked with `--test` (as `cargo test --benches` does), benchmark
//! registration runs but the routines are skipped, keeping the test suite
//! fast.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How setup values are batched in [`Bencher::iter_batched`]. The shim
/// always materializes one input per iteration, so the variants only
/// document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small input: batch many per allocation.
    SmallInput,
    /// Large input: few per allocation.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Times one benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Self { samples, times: Vec::with_capacity(samples) }
    }

    /// Times `routine` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.times.push(start.elapsed());
        }
    }

    /// Times `routine` over per-sample inputs built by `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.times.push(start.elapsed());
        }
    }

    fn report(&mut self, name: &str) {
        if self.times.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        self.times.sort();
        let median = self.times[self.times.len() / 2];
        let mean = self.times.iter().sum::<Duration>() / self.times.len() as u32;
        let min = self.times[0];
        println!(
            "{name:<40} median {median:>12.3?}   mean {mean:>12.3?}   min {min:>12.3?}   ({n} samples)",
            n = self.times.len()
        );
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Self { sample_size: 10, test_mode }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs (or, under `--test`, skips) one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if self.test_mode {
            println!("{name:<40} skipped (test mode)");
            return self;
        }
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("── group: {name} ──");
        BenchmarkGroup { criterion: self, prefix: name.to_string() }
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size(n);
        self
    }

    /// Runs one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.prefix, name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Finishes the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher::new(5);
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(calls, 5);
        assert_eq!(b.times.len(), 5);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut b = Bencher::new(4);
        let mut setups = 0u32;
        b.iter_batched(
            || {
                setups += 1;
                setups
            },
            |v| v * 2,
            BatchSize::PerIteration,
        );
        assert_eq!(setups, 4);
    }
}
