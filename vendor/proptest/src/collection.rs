//! Collection strategies (`proptest::collection::vec`).

use crate::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// A vector length specification: either an exact `usize` or a
/// `Range<usize>`.
pub trait IntoSizeRange {
    /// Draws a concrete length.
    fn sample_len(&self, rng: &mut StdRng) -> usize;
}

impl IntoSizeRange for usize {
    fn sample_len(&self, _rng: &mut StdRng) -> usize {
        *self
    }
}

impl IntoSizeRange for Range<usize> {
    fn sample_len(&self, rng: &mut StdRng) -> usize {
        assert!(self.start < self.end, "empty length range");
        rng.gen_range(self.start..self.end)
    }
}

/// Strategy producing vectors of values drawn from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        let n = self.len.sample_len(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// Builds a strategy for vectors of `element` values with the given length
/// specification (exact or a range).
pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { element, len }
}
