//! Offline stand-in for the subset of the `proptest` crate used by the
//! GLOVA workspace.
//!
//! The real `proptest` is unavailable in the offline build environment.
//! This shim keeps the property tests compiling and *meaningful*: each
//! `proptest!` test body is executed for [`CASES`] random inputs drawn
//! from the declared strategies with a per-test deterministic seed.
//! Shrinking is not implemented — on failure the offending input is
//! reported verbatim instead.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

pub mod collection;

/// Number of random cases executed per property.
pub const CASES: usize = 64;

/// Error raised by `prop_assert!`-style macros inside a property body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic per-test RNG: the seed is an FNV-1a hash of the test
/// name, so adding or reordering tests never perturbs other tests' cases.
pub fn test_rng(name: &str) -> StdRng {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// A source of random values of an associated type.
pub trait Strategy {
    /// The value type produced.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.start..self.end)
    }
}

impl Strategy for Range<u64> {
    type Value = u64;

    fn sample(&self, rng: &mut StdRng) -> u64 {
        rng.gen_range(self.start..self.end)
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn sample(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.start..self.end)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy, TestCaseError,
    };
}

/// Declares property tests: each `fn` becomes a `#[test]` that runs its
/// body for [`CASES`] inputs drawn from the argument strategies.
#[macro_export]
macro_rules! proptest {
    ($(#[test] fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            #[test]
            fn $name() {
                let mut proptest_rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for proptest_case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut proptest_rng);)+
                    let debug_inputs = || {
                        let mut s = String::new();
                        $(s.push_str(&format!("{} = {:?}; ", stringify!($arg), $arg));)+
                        s
                    };
                    let inputs = debug_inputs();
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property {} failed at case {}: {}\ninputs: {}",
                            stringify!($name), proptest_case, e, inputs
                        );
                    }
                }
            }
        )+
    };
}

/// Property-scoped assertion: fails the current case without aborting the
/// process, reporting the sampled inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Property-scoped equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Property-scoped inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
}

#[cfg(test)]
mod tests {

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in -3.0f64..3.0, n in 1usize..9) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn vec_strategy_sizes(xs in crate::collection::vec(0.0f64..1.0, 4)) {
            prop_assert_eq!(xs.len(), 4);
            prop_assert!(xs.iter().all(|v| (0.0..1.0).contains(v)));
        }

        #[test]
        fn vec_range_sizes(xs in crate::collection::vec(0.0f64..1.0, 2..10)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 10);
        }

        #[test]
        fn tuple_strategies(pair in crate::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 0..5)) {
            prop_assert!(pair.len() < 5);
        }
    }

    #[test]
    fn test_rng_is_per_name() {
        use rand::Rng;
        let a = crate::test_rng("a").gen::<u64>();
        let b = crate::test_rng("b").gen::<u64>();
        assert_ne!(a, b);
        assert_eq!(a, crate::test_rng("a").gen::<u64>());
    }
}
