//! Offline stand-in for the subset of the `rand` crate API used by the
//! GLOVA workspace.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a small, deterministic implementation of exactly the
//! surface it consumes: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] extension methods `gen`, `gen_range` and `gen_bool`.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through a
//! SplitMix64 expansion — statistically strong, fast, and fully
//! reproducible across platforms. It intentionally does **not** match the
//! stream of the real `rand::rngs::StdRng` (ChaCha12); nothing in the
//! workspace depends on the concrete stream, only on determinism.

pub mod distributions;
pub mod rngs;

pub use distributions::{Distribution, Standard};

/// A source of 64-bit random words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1], got {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let i = rng.gen_range(3..17usize);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(0..=4usize);
            assert!(j <= 4);
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let g = rng.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn mean_of_unit_floats_is_half() {
        let mut rng = StdRng::seed_from_u64(13);
        let mean: f64 = (0..50_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 50_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
