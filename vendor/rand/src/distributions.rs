//! Distributions and uniform-range sampling.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution: uniform over the natural domain of the type
/// (`[0, 1)` for floats, the full range for integers).
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits → [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A range that can be sampled uniformly (the receiver of
/// [`Rng::gen_range`](crate::Rng::gen_range)).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer draw from `[0, bound)` via Lemire's multiply-shift
/// method with rejection.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample an empty range");
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let r = rng.next_u64();
        let m = (r as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64_below(rng, span) as $ty
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return start + rng.next_u64() as $ty;
                }
                start + uniform_u64_below(rng, span + 1) as $ty
            }
        }
    )*};
}

impl_int_ranges!(usize, u64, u32);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = Standard.sample(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        let u: f64 = Standard.sample(rng);
        start + (end - start) * u
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn lemire_covers_small_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[uniform_u64_below(&mut rng, 7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = (5..5usize).sample_single(&mut rng);
    }
}
