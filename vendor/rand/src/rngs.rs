//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard generator: xoshiro256++ behind the name the
/// real `rand` crate uses, so call sites compile unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    state: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion of the seed into the 256-bit state, as
        // recommended by the xoshiro authors. A zero-everywhere state is
        // impossible because SplitMix64 is a bijection chain.
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self { state: [next(), next(), next(), next()] }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ (Blackman & Vigna, 2019).
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_seeds_distinct_streams() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(2);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = StdRng::seed_from_u64(0);
        let draws: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert!(draws.iter().any(|&d| d != 0));
    }
}
